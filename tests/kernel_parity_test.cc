/// \file
/// Differential kernel-parity harness (ISSUE 7): the vectorized kernel must
/// reproduce the scalar reference kernel's bits exactly — per block, per
/// fold, per op — for hundreds of seeded (rows × cols × block_size) shapes,
/// including tail blocks shorter than the block size, single-row blocks,
/// sparse index subsets, and adversarial magnitudes (1e±30 mixes,
/// denormals, negative zeros). This harness is what makes the intra-block
/// kernels safe to rewrite: any reassociation, contraction, or accumulation
/// shortcut that changes even one bit of one block fails here.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "linalg/batch_fold.h"
#include "linalg/error_partials.h"
#include "linalg/score_partials.h"
#include "linalg/kernels/block_stage.h"
#include "linalg/kernels/kernel.h"
#include "linalg/suffstats.h"

namespace charles {
namespace {

using kernels::Kernel;
using kernels::ScalarKernel;
using kernels::SimdKernel;

/// One adversarial double: a mixture of benign values, huge/tiny decades
/// (1e±30), denormals, and signed zeros — the inputs where any intra-block
/// reassociation shows up as changed bits immediately.
double AdversarialValue(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  switch (rng() % 8) {
    case 0:
      return unit(rng);
    case 1:
      return unit(rng) * 1e30;
    case 2:
      return unit(rng) * 1e-30;
    case 3:
      return -0.0;
    case 4:
      return 0.0;
    case 5:
      // A spread of true denormals (the smallest representable magnitudes).
      return std::numeric_limits<double>::denorm_min() *
             static_cast<double>(1 + rng() % 1000);
    case 6:
      // Large mean, small spread: the shift-cancellation regime.
      return 1e8 + unit(rng);
    default: {
      int exp10 = static_cast<int>(rng() % 61) - 30;
      return unit(rng) * std::pow(10.0, exp10);
    }
  }
}

std::vector<double> AdversarialColumn(int64_t n, std::mt19937_64& rng) {
  std::vector<double> column(static_cast<size_t>(n));
  for (double& v : column) v = AdversarialValue(rng);
  return column;
}

/// Row index sets: either all rows or a random sorted subset (leaves are
/// subsets, and subsets produce short and fragmented per-block runs).
std::vector<int64_t> MakeRows(int64_t n, bool subset, std::mt19937_64& rng) {
  std::vector<int64_t> rows;
  for (int64_t r = 0; r < n; ++r) {
    if (!subset || rng() % 3 != 0) rows.push_back(r);
  }
  if (rows.empty()) rows.push_back(n / 2);  // keep at least one row
  return rows;
}

struct ShapeCase {
  std::vector<std::vector<double>> column_storage;
  std::vector<const std::vector<double>*> columns;
  std::vector<double> y;
  std::vector<int64_t> rows;
};

ShapeCase MakeShapeCase(int64_t num_rows, int64_t num_cols, bool subset,
                        std::mt19937_64& rng) {
  ShapeCase c;
  c.column_storage.reserve(static_cast<size_t>(num_cols));
  for (int64_t f = 0; f < num_cols; ++f) {
    c.column_storage.push_back(AdversarialColumn(num_rows, rng));
  }
  for (const auto& col : c.column_storage) c.columns.push_back(&col);
  c.y = AdversarialColumn(num_rows, rng);
  c.rows = MakeRows(num_rows, subset, rng);
  return c;
}

// --- SufficientStats block folds --------------------------------------------

TEST(KernelParityTest, HundredsOfSeededShapesBitIdentical) {
  const Kernel& scalar = ScalarKernel();
  const Kernel& simd = SimdKernel();
  int shapes_checked = 0;
  for (uint64_t seed = 0; seed < 150; ++seed) {
    std::mt19937_64 rng(seed * 7919 + 17);
    int64_t num_rows = 1 + static_cast<int64_t>(rng() % 200);
    int64_t num_cols = static_cast<int64_t>(rng() % 7);  // includes p = 0
    bool subset = (rng() % 2) == 0;
    ShapeCase c = MakeShapeCase(num_rows, num_cols, subset, rng);
    // Block sizes spanning single-row blocks, prime sizes that leave tails,
    // one-block cases, and blocks larger than the data.
    const int64_t blocks[] = {1, 3, 7, 16, 64, num_rows, num_rows + 13};
    for (int64_t block_rows : blocks) {
      SufficientStats expected =
          AccumulateRowBlocks(scalar, c.columns, c.y, c.rows, block_rows);
      SufficientStats actual =
          AccumulateRowBlocks(simd, c.columns, c.y, c.rows, block_rows);
      ASSERT_TRUE(actual.BitIdenticalTo(expected))
          << "seed " << seed << " rows " << num_rows << " cols " << num_cols
          << " block " << block_rows << " subset " << subset;
      ++shapes_checked;
    }
  }
  EXPECT_GE(shapes_checked, 1000);  // "hundreds of shapes" and then some
}

TEST(KernelParityTest, ContiguousRangeFoldBitIdentical) {
  const Kernel& scalar = ScalarKernel();
  const Kernel& simd = SimdKernel();
  for (uint64_t seed = 0; seed < 50; ++seed) {
    std::mt19937_64 rng(seed * 104729 + 5);
    int64_t num_rows = 1 + static_cast<int64_t>(rng() % 300);
    int64_t num_cols = 1 + static_cast<int64_t>(rng() % 5);
    ShapeCase c = MakeShapeCase(num_rows, num_cols, /*subset=*/false, rng);
    for (int64_t block_rows : {1L, 5L, 32L, num_rows, num_rows + 1}) {
      SufficientStats expected =
          AccumulateRangeBlocks(scalar, c.columns, c.y, num_rows, block_rows);
      SufficientStats actual =
          AccumulateRangeBlocks(simd, c.columns, c.y, num_rows, block_rows);
      ASSERT_TRUE(actual.BitIdenticalTo(expected))
          << "seed " << seed << " rows " << num_rows << " block " << block_rows;
      // And the range fold must equal the indexed fold over the identity
      // index set — the contract that lets shards address blocks either way.
      std::vector<int64_t> identity(static_cast<size_t>(num_rows));
      for (int64_t r = 0; r < num_rows; ++r) identity[static_cast<size_t>(r)] = r;
      SufficientStats indexed =
          AccumulateRowBlocks(simd, c.columns, c.y, identity, block_rows);
      ASSERT_TRUE(indexed.BitIdenticalTo(actual))
          << "seed " << seed << " block " << block_rows;
    }
  }
}

TEST(KernelParityTest, SingleBlockPrimitiveBitIdentical) {
  // The raw block primitive (one fresh partial per call), including the
  // single-row and empty-block edges.
  const Kernel& scalar = ScalarKernel();
  const Kernel& simd = SimdKernel();
  for (uint64_t seed = 0; seed < 50; ++seed) {
    std::mt19937_64 rng(seed * 31 + 7);
    int64_t num_rows = 1 + static_cast<int64_t>(rng() % 80);
    int64_t num_cols = static_cast<int64_t>(rng() % 5);
    ShapeCase c = MakeShapeCase(num_rows, num_cols, /*subset=*/true, rng);
    int64_t count = static_cast<int64_t>(c.rows.size());
    for (int64_t take : {int64_t{0}, int64_t{1}, count / 2, count}) {
      SufficientStats expected =
          AccumulateRows(scalar, c.columns, c.y, c.rows.data(), take);
      SufficientStats actual =
          AccumulateRows(simd, c.columns, c.y, c.rows.data(), take);
      ASSERT_TRUE(actual.BitIdenticalTo(expected))
          << "seed " << seed << " take " << take;
      EXPECT_EQ(actual.n(), take);
    }
  }
}

TEST(KernelParityTest, MergeAcrossShardBoundarySplitsBitIdentical) {
  // The coordinator's computation: shards each produce *per-block* partials
  // and the merge folds every block in ascending order. Splitting the row
  // set at any block boundary and folding the two shards' blocks into one
  // stats must be bit-identical to the central scalar fold — with the simd
  // kernel producing the shard partials.
  const Kernel& scalar = ScalarKernel();
  const Kernel& simd = SimdKernel();
  for (uint64_t seed = 0; seed < 60; ++seed) {
    std::mt19937_64 rng(seed * 13 + 3);
    int64_t num_rows = 16 + static_cast<int64_t>(rng() % 200);
    int64_t num_cols = 1 + static_cast<int64_t>(rng() % 4);
    int64_t block_rows = 1 + static_cast<int64_t>(rng() % 32);
    ShapeCase c = MakeShapeCase(num_rows, num_cols, /*subset=*/true, rng);

    SufficientStats expected =
        AccumulateRowBlocks(scalar, c.columns, c.y, c.rows, block_rows);

    // Split position: the first row index at or after a random block
    // boundary — exactly where the shard planner is allowed to cut.
    int64_t boundary_row =
        block_rows *
        (1 + static_cast<int64_t>(
                 rng() % static_cast<uint64_t>(num_rows / block_rows + 1)));
    size_t split = 0;
    while (split < c.rows.size() && c.rows[split] < boundary_row) ++split;
    std::vector<int64_t> left(c.rows.begin(), c.rows.begin() + split);
    std::vector<int64_t> right(c.rows.begin() + split, c.rows.end());

    SufficientStats merged(num_cols);
    for (const std::vector<int64_t>& part : {left, right}) {
      ForEachRowBlock(part.data(), static_cast<int64_t>(part.size()),
                      block_rows,
                      [&](int64_t /*block*/, const int64_t* ptr, int64_t n) {
                        ASSERT_TRUE(
                            merged
                                .Merge(AccumulateRows(simd, c.columns, c.y,
                                                      ptr, n))
                                .ok());
                      });
    }
    ASSERT_TRUE(merged.BitIdenticalTo(expected))
        << "seed " << seed << " split at row " << boundary_row;
  }
}

// --- ErrorPartials folds -----------------------------------------------------

TEST(KernelParityTest, AbsDiffAndAbsFoldsBitIdentical) {
  const Kernel& scalar = ScalarKernel();
  const Kernel& simd = SimdKernel();
  for (uint64_t seed = 0; seed < 100; ++seed) {
    std::mt19937_64 rng(seed * 911 + 1);
    int64_t num_rows = 1 + static_cast<int64_t>(rng() % 400);
    std::vector<int64_t> rows = MakeRows(num_rows, (rng() % 2) == 0, rng);
    // Positional arrays: values[i] belongs to global row rows[i].
    std::vector<double> a = AdversarialColumn(static_cast<int64_t>(rows.size()), rng);
    std::vector<double> b = AdversarialColumn(static_cast<int64_t>(rows.size()), rng);
    for (int64_t block_rows : {1L, 7L, 64L, num_rows + 1}) {
      ErrorPartials expected_diff =
          AccumulateAbsDiffBlocks(scalar, a, b, rows, block_rows);
      ErrorPartials actual_diff =
          AccumulateAbsDiffBlocks(simd, a, b, rows, block_rows);
      ASSERT_TRUE(actual_diff.BitIdenticalTo(expected_diff))
          << "seed " << seed << " block " << block_rows;
      ErrorPartials expected_abs = AccumulateAbsBlocks(scalar, a, rows, block_rows);
      ErrorPartials actual_abs = AccumulateAbsBlocks(simd, a, rows, block_rows);
      ASSERT_TRUE(actual_abs.BitIdenticalTo(expected_abs))
          << "seed " << seed << " block " << block_rows;
    }
  }
}

TEST(KernelParityTest, ProbeAbsErrorSumBitIdentical) {
  const Kernel& scalar = ScalarKernel();
  const Kernel& simd = SimdKernel();
  for (uint64_t seed = 0; seed < 100; ++seed) {
    std::mt19937_64 rng(seed * 2221 + 9);
    int64_t num_rows = 1 + static_cast<int64_t>(rng() % 300);
    int64_t num_cols = static_cast<int64_t>(rng() % 4);
    ShapeCase c = MakeShapeCase(num_rows, num_cols, /*subset=*/true, rng);
    double intercept = AdversarialValue(rng);
    std::vector<double> coefficients(static_cast<size_t>(num_cols));
    for (double& v : coefficients) v = AdversarialValue(rng);
    int64_t count = static_cast<int64_t>(c.rows.size());
    for (int64_t take : {int64_t{1}, count / 3, count}) {
      if (take < 1) continue;
      double expected = scalar.probe_abs_error_sum(
          intercept, coefficients.data(), c.columns, c.y, c.rows.data(), take);
      double actual = simd.probe_abs_error_sum(
          intercept, coefficients.data(), c.columns, c.y, c.rows.data(), take);
      ASSERT_EQ(std::memcmp(&expected, &actual, sizeof(double)), 0)
          << "seed " << seed << " take " << take;
    }
  }
}

// --- ScorePartials folds ------------------------------------------------------

TEST(KernelParityTest, ScoreDiffSumBitIdenticalAndSumMatchesAbsDiff) {
  const Kernel& scalar = ScalarKernel();
  const Kernel& simd = SimdKernel();
  for (uint64_t seed = 0; seed < 100; ++seed) {
    std::mt19937_64 rng(seed * 433 + 5);
    int64_t num_rows = 1 + static_cast<int64_t>(rng() % 400);
    std::vector<int64_t> rows = MakeRows(num_rows, (rng() % 2) == 0, rng);
    std::vector<double> a = AdversarialColumn(static_cast<int64_t>(rows.size()), rng);
    std::vector<double> b = AdversarialColumn(static_cast<int64_t>(rows.size()), rng);
    // Spread the band across the adversarial decades so some seeds tally
    // nothing, some everything, most a genuine mix.
    double tolerance = std::pow(10.0, static_cast<int>(rng() % 61) - 30);
    for (int64_t block_rows : {1L, 7L, 64L, num_rows + 1}) {
      ScorePartials expected =
          AccumulateScoreDiffBlocks(scalar, a, b, rows, block_rows, tolerance);
      ScorePartials actual =
          AccumulateScoreDiffBlocks(simd, a, b, rows, block_rows, tolerance);
      ASSERT_TRUE(actual.BitIdenticalTo(expected))
          << "seed " << seed << " block " << block_rows;
      // The Σ chain is the error fold's chain: same addends, same order.
      ErrorPartials error_fold =
          AccumulateAbsDiffBlocks(scalar, a, b, rows, block_rows);
      ASSERT_EQ(std::memcmp(&expected.abs_error_sum, &error_fold.abs_error_sum,
                            sizeof(double)),
                0)
          << "seed " << seed << " block " << block_rows;
      ASSERT_EQ(expected.n, error_fold.n);
    }
  }
}

TEST(KernelParityTest, ProbeScoreSumBitIdenticalAndSumMatchesProbeError) {
  const Kernel& scalar = ScalarKernel();
  const Kernel& simd = SimdKernel();
  for (uint64_t seed = 0; seed < 100; ++seed) {
    std::mt19937_64 rng(seed * 3907 + 11);
    int64_t num_rows = 1 + static_cast<int64_t>(rng() % 300);
    int64_t num_cols = static_cast<int64_t>(rng() % 4);
    ShapeCase c = MakeShapeCase(num_rows, num_cols, /*subset=*/true, rng);
    double intercept = AdversarialValue(rng);
    std::vector<double> coefficients(static_cast<size_t>(num_cols));
    for (double& v : coefficients) v = AdversarialValue(rng);
    double tolerance = std::pow(10.0, static_cast<int>(rng() % 61) - 30);
    int64_t count = static_cast<int64_t>(c.rows.size());
    for (int64_t take : {int64_t{1}, count / 3, count}) {
      if (take < 1) continue;
      double expected_sum = 0.0, actual_sum = 0.0;
      int64_t expected_exact = 0, actual_exact = 0;
      scalar.probe_score_sum(intercept, coefficients.data(), c.columns, c.y,
                             c.rows.data(), take, tolerance, &expected_sum,
                             &expected_exact);
      simd.probe_score_sum(intercept, coefficients.data(), c.columns, c.y,
                           c.rows.data(), take, tolerance, &actual_sum,
                           &actual_exact);
      ASSERT_EQ(std::memcmp(&expected_sum, &actual_sum, sizeof(double)), 0)
          << "seed " << seed << " take " << take;
      ASSERT_EQ(expected_exact, actual_exact)
          << "seed " << seed << " take " << take;
      // The ŷ + Σ chain replays probe_abs_error_sum's exactly.
      double error_sum = scalar.probe_abs_error_sum(
          intercept, coefficients.data(), c.columns, c.y, c.rows.data(), take);
      ASSERT_EQ(std::memcmp(&expected_sum, &error_sum, sizeof(double)), 0)
          << "seed " << seed << " take " << take;
    }
  }
}

TEST(KernelParityTest, GatherBitIdentical) {
  const Kernel& scalar = ScalarKernel();
  const Kernel& simd = SimdKernel();
  std::mt19937_64 rng(1234);
  std::vector<double> src = AdversarialColumn(500, rng);
  std::vector<int64_t> rows = MakeRows(500, /*subset=*/true, rng);
  for (int64_t stride : {1L, 2L, 5L}) {
    std::vector<double> expected(rows.size() * static_cast<size_t>(stride), -1.0);
    std::vector<double> actual = expected;
    scalar.gather(src.data(), rows.data(), static_cast<int64_t>(rows.size()),
                  expected.data(), stride);
    simd.gather(src.data(), rows.data(), static_cast<int64_t>(rows.size()),
                actual.data(), stride);
    ASSERT_EQ(std::memcmp(expected.data(), actual.data(),
                          expected.size() * sizeof(double)),
              0)
        << "stride " << stride;
  }
}

// --- Batched folds (ISSUE 8): staged blocks vs per-leaf sweeps --------------

/// N random sorted leaf row sets over [0, n) — overlapping, fragmenting the
/// blocks differently per leaf (the multi-leaf batching workload).
std::vector<std::vector<int64_t>> MakeLeafSets(int64_t n, int64_t num_leaves,
                                               std::mt19937_64& rng) {
  std::vector<std::vector<int64_t>> leaves;
  for (int64_t l = 0; l < num_leaves; ++l) {
    leaves.push_back(MakeRows(n, /*subset=*/true, rng));
  }
  return leaves;
}

TEST(KernelParityTest, BatchedLeafMomentsBitIdenticalToPerLeaf) {
  // The tentpole contract: one staged block folded for N leaves at once must
  // reproduce the per-leaf scalar fold bit for bit — per leaf, per kernel,
  // for adversarial magnitudes, tail blocks, and single-leaf batches.
  const Kernel& scalar = ScalarKernel();
  const Kernel& simd = SimdKernel();
  for (uint64_t seed = 0; seed < 60; ++seed) {
    std::mt19937_64 rng(seed * 6101 + 11);
    int64_t num_rows = 1 + static_cast<int64_t>(rng() % 250);
    int64_t num_cols = static_cast<int64_t>(rng() % 6);  // includes p = 0
    int64_t num_leaves = 1 + static_cast<int64_t>(rng() % 5);  // includes 1
    ShapeCase c = MakeShapeCase(num_rows, num_cols, /*subset=*/false, rng);
    std::vector<std::vector<int64_t>> leaves =
        MakeLeafSets(num_rows, num_leaves, rng);
    std::vector<kernels::BatchLeafRequest> requests(leaves.size());
    for (size_t l = 0; l < leaves.size(); ++l) {
      requests[l].rows = leaves[l].data();
      requests[l].count = static_cast<int64_t>(leaves[l].size());
    }
    for (int64_t block_rows : {1L, 7L, 64L, num_rows, num_rows + 13}) {
      for (const Kernel* kernel : {&scalar, &simd}) {
        kernels::BlockStager stager;
        kernels::BatchFoldCounters counters;
        std::vector<SufficientStats> batched =
            kernels::BatchAccumulateRowBlocks(*kernel, c.columns, c.y,
                                              requests, 0, num_rows,
                                              block_rows, &stager, &counters);
        ASSERT_EQ(batched.size(), leaves.size());
        for (size_t l = 0; l < leaves.size(); ++l) {
          SufficientStats expected = AccumulateRowBlocks(
              scalar, c.columns, c.y, leaves[l], block_rows);
          ASSERT_TRUE(batched[l].BitIdenticalTo(expected))
              << "seed " << seed << " kernel " << kernel->name << " leaf "
              << l << " block " << block_rows;
        }
        EXPECT_GT(counters.blocks_staged, 0);
        EXPECT_LE(counters.max_accumulators_per_block, num_leaves);
      }
    }
  }
}

TEST(KernelParityTest, BatchedFoldAcrossShardBoundaryBitIdentical) {
  // Leaf sets straddling a shard boundary: each shard batches its sub-range
  // independently (block-aligned range starts, just like ExecuteShardTask)
  // and the coordinator-style ascending-block Merge of the two halves must
  // equal the central scalar per-leaf fold.
  const Kernel& scalar = ScalarKernel();
  const Kernel& simd = SimdKernel();
  for (uint64_t seed = 0; seed < 40; ++seed) {
    std::mt19937_64 rng(seed * 353 + 29);
    int64_t num_rows = 32 + static_cast<int64_t>(rng() % 200);
    int64_t num_cols = 1 + static_cast<int64_t>(rng() % 4);
    int64_t block_rows = 1 + static_cast<int64_t>(rng() % 24);
    int64_t num_leaves = 2 + static_cast<int64_t>(rng() % 4);
    ShapeCase c = MakeShapeCase(num_rows, num_cols, /*subset=*/false, rng);
    std::vector<std::vector<int64_t>> leaves =
        MakeLeafSets(num_rows, num_leaves, rng);
    // A block-aligned cut strictly inside the data, as PlanShards makes them.
    int64_t boundary =
        block_rows * (1 + static_cast<int64_t>(
                              rng() % static_cast<uint64_t>(
                                          (num_rows - 1) / block_rows + 1)));
    if (boundary > num_rows) boundary = num_rows;

    for (const Kernel* kernel : {&scalar, &simd}) {
      std::vector<SufficientStats> merged(leaves.size(),
                                          SufficientStats(num_cols));
      kernels::BlockStager stager;
      kernels::BatchFoldCounters counters;
      const int64_t range_bounds[3] = {0, boundary, num_rows};
      for (int half = 0; half < 2; ++half) {
        const int64_t lo = range_bounds[half], hi = range_bounds[half + 1];
        std::vector<std::vector<int64_t>> part(leaves.size());
        std::vector<kernels::BatchLeafRequest> requests;
        std::vector<size_t> ordinals;
        for (size_t l = 0; l < leaves.size(); ++l) {
          for (int64_t row : leaves[l]) {
            if (row >= lo && row < hi) part[l].push_back(row);
          }
          if (part[l].empty()) continue;
          kernels::BatchLeafRequest request;
          request.rows = part[l].data();
          request.count = static_cast<int64_t>(part[l].size());
          requests.push_back(request);
          ordinals.push_back(l);
        }
        kernels::BatchFoldLeafMoments(
            *kernel, c.columns, c.y, requests, lo, hi, block_rows, &stager,
            &counters,
            [&](int64_t ordinal, int64_t /*block*/, SufficientStats&& stats) {
              ASSERT_TRUE(
                  merged[ordinals[static_cast<size_t>(ordinal)]].Merge(stats)
                      .ok());
            });
      }
      for (size_t l = 0; l < leaves.size(); ++l) {
        SufficientStats expected =
            AccumulateRowBlocks(scalar, c.columns, c.y, leaves[l], block_rows);
        ASSERT_TRUE(merged[l].BitIdenticalTo(expected))
            << "seed " << seed << " kernel " << kernel->name << " leaf " << l
            << " boundary " << boundary;
      }
    }
  }
}

TEST(KernelParityTest, ErrorFoldBatchBitIdenticalToSingleFolds) {
  // E mixed abs-diff / abs-sum folds sharing one row set, one batched kernel
  // call per block — each entry bit-identical to its single-fold scalar
  // reference.
  const Kernel& scalar = ScalarKernel();
  const Kernel& simd = SimdKernel();
  for (uint64_t seed = 0; seed < 50; ++seed) {
    std::mt19937_64 rng(seed * 487 + 3);
    int64_t num_rows = 1 + static_cast<int64_t>(rng() % 300);
    std::vector<int64_t> rows = MakeRows(num_rows, (rng() % 2) == 0, rng);
    int64_t num_entries = 1 + static_cast<int64_t>(rng() % 5);
    std::vector<std::vector<double>> a_storage, b_storage;
    std::vector<const std::vector<double>*> a, b;
    for (int64_t e = 0; e < num_entries; ++e) {
      a_storage.push_back(
          AdversarialColumn(static_cast<int64_t>(rows.size()), rng));
      b_storage.push_back(
          AdversarialColumn(static_cast<int64_t>(rows.size()), rng));
    }
    for (int64_t e = 0; e < num_entries; ++e) {
      a.push_back(&a_storage[static_cast<size_t>(e)]);
      // Every other entry is an abs-sum fold (null b).
      b.push_back(e % 2 == 0 ? &b_storage[static_cast<size_t>(e)] : nullptr);
    }
    for (int64_t block_rows : {1L, 7L, 64L, num_rows + 1}) {
      for (const Kernel* kernel : {&scalar, &simd}) {
        std::vector<ErrorPartials> batched =
            AccumulateAbsDiffBlocksBatch(*kernel, a, b, rows, block_rows);
        ASSERT_EQ(batched.size(), a.size());
        for (int64_t e = 0; e < num_entries; ++e) {
          ErrorPartials expected =
              b[static_cast<size_t>(e)] != nullptr
                  ? AccumulateAbsDiffBlocks(scalar, a_storage[static_cast<size_t>(e)],
                                            b_storage[static_cast<size_t>(e)],
                                            rows, block_rows)
                  : AccumulateAbsBlocks(scalar, a_storage[static_cast<size_t>(e)],
                                        rows, block_rows);
          ASSERT_TRUE(batched[static_cast<size_t>(e)].BitIdenticalTo(expected))
              << "seed " << seed << " kernel " << kernel->name << " entry "
              << e << " block " << block_rows;
        }
      }
    }
  }
}

TEST(KernelParityTest, BatchedProbeEvalBitIdenticalToPerProbe) {
  // M probes with distinct feature subsets evaluated against staged blocks,
  // vs the per-probe scalar block sweep (the RunErrorPartials reference).
  const Kernel& scalar = ScalarKernel();
  const Kernel& simd = SimdKernel();
  for (uint64_t seed = 0; seed < 50; ++seed) {
    std::mt19937_64 rng(seed * 769 + 21);
    int64_t num_rows = 1 + static_cast<int64_t>(rng() % 250);
    int64_t num_cols = 1 + static_cast<int64_t>(rng() % 5);
    int64_t num_probes = 1 + static_cast<int64_t>(rng() % 5);
    ShapeCase c = MakeShapeCase(num_rows, num_cols, /*subset=*/false, rng);
    std::vector<std::vector<int64_t>> probe_rows =
        MakeLeafSets(num_rows, num_probes, rng);
    struct ProbeModel {
      double intercept;
      std::vector<double> coefficients;
      std::vector<int64_t> features;
    };
    std::vector<ProbeModel> models(static_cast<size_t>(num_probes));
    std::vector<kernels::BatchProbeRequest> requests(
        static_cast<size_t>(num_probes));
    for (int64_t p = 0; p < num_probes; ++p) {
      ProbeModel& model = models[static_cast<size_t>(p)];
      model.intercept = AdversarialValue(rng);
      int64_t num_features = static_cast<int64_t>(rng() % (num_cols + 1));
      for (int64_t f = 0; f < num_features; ++f) {
        model.coefficients.push_back(AdversarialValue(rng));
        model.features.push_back(static_cast<int64_t>(rng() %
                                                      static_cast<uint64_t>(num_cols)));
      }
      kernels::BatchProbeRequest& request = requests[static_cast<size_t>(p)];
      request.intercept = model.intercept;
      request.coefficients = model.coefficients.data();
      request.feature_columns = model.features.data();
      request.num_features = num_features;
      request.rows = probe_rows[static_cast<size_t>(p)].data();
      request.count = static_cast<int64_t>(probe_rows[static_cast<size_t>(p)].size());
    }
    for (int64_t block_rows : {1L, 16L, num_rows, num_rows + 7}) {
      for (const Kernel* kernel : {&scalar, &simd}) {
        kernels::BlockStager stager;
        kernels::BatchFoldCounters counters;
        std::vector<ErrorPartials> batched(static_cast<size_t>(num_probes));
        kernels::BatchFoldProbeErrors(
            *kernel, c.columns, c.y, requests, 0, num_rows, block_rows,
            &stager, &counters,
            [&](int64_t ordinal, int64_t /*block*/, ErrorPartials&& partial) {
              batched[static_cast<size_t>(ordinal)].Merge(partial);
            });
        for (int64_t p = 0; p < num_probes; ++p) {
          const ProbeModel& model = models[static_cast<size_t>(p)];
          std::vector<const std::vector<double>*> feature_columns;
          for (int64_t f : model.features) {
            feature_columns.push_back(c.columns[static_cast<size_t>(f)]);
          }
          ErrorPartials expected;
          ForEachRowBlock(
              probe_rows[static_cast<size_t>(p)].data(),
              static_cast<int64_t>(probe_rows[static_cast<size_t>(p)].size()),
              block_rows, [&](int64_t /*block*/, const int64_t* ptr, int64_t n) {
                ErrorPartials partial;
                partial.abs_error_sum = scalar.probe_abs_error_sum(
                    model.intercept, model.coefficients.data(),
                    feature_columns, c.y, ptr, n);
                partial.n = n;
                expected.Merge(partial);
              });
          ASSERT_TRUE(
              batched[static_cast<size_t>(p)].BitIdenticalTo(expected))
              << "seed " << seed << " kernel " << kernel->name << " probe "
              << p << " block " << block_rows;
        }
      }
    }
  }
}

TEST(KernelParityTest, StagedBlockIsABitCopy) {
  // The first leg of the bit-identity argument: staged buffers are memcpy
  // images of the source column slices — every addend the batched kernels
  // read equals the per-leaf kernels' addend by construction.
  std::mt19937_64 rng(4242);
  ShapeCase c = MakeShapeCase(300, 4, /*subset=*/false, rng);
  kernels::BlockStager stager;
  for (int64_t begin : {0L, 64L, 256L}) {
    int64_t count = std::min<int64_t>(100, 300 - begin);
    kernels::StagedBlock staged = stager.Stage(c.columns, &c.y, begin, count);
    ASSERT_EQ(staged.num_columns, 4);
    ASSERT_EQ(staged.count, count);
    ASSERT_EQ(staged.row_begin, begin);
    for (int64_t col = 0; col < staged.num_columns; ++col) {
      EXPECT_EQ(std::memcmp(staged.columns[col],
                            c.columns[static_cast<size_t>(col)]->data() + begin,
                            static_cast<size_t>(count) * sizeof(double)),
                0)
          << "begin " << begin << " col " << col;
    }
    EXPECT_EQ(std::memcmp(staged.y, c.y.data() + begin,
                          static_cast<size_t>(count) * sizeof(double)),
              0);
  }
}

TEST(KernelParityTest, ParseBatchFoldModes) {
  EXPECT_TRUE(kernels::ParseBatchFoldMode("auto").ok());
  EXPECT_TRUE(kernels::ParseBatchFoldMode("on").ok());
  EXPECT_TRUE(kernels::ParseBatchFoldMode("off").ok());
  EXPECT_TRUE(kernels::ParseBatchFoldMode("always").status().IsInvalidArgument());
  EXPECT_TRUE(kernels::ParseBatchFoldMode("").status().IsInvalidArgument());
  EXPECT_FALSE(kernels::ShouldBatchFold(kernels::BatchFoldMode::kOff, 8));
  EXPECT_FALSE(kernels::ShouldBatchFold(kernels::BatchFoldMode::kAuto, 1));
  EXPECT_TRUE(kernels::ShouldBatchFold(kernels::BatchFoldMode::kAuto, 2));
  EXPECT_TRUE(kernels::ShouldBatchFold(kernels::BatchFoldMode::kOn, 1));
  EXPECT_FALSE(kernels::ShouldBatchFold(kernels::BatchFoldMode::kOn, 0));
}

// --- Registry, dispatch, and the compensated-summation oracle ---------------

TEST(KernelParityTest, ParseAndResolveBackends) {
  EXPECT_TRUE(kernels::ParseKernelBackend("auto").ok());
  EXPECT_TRUE(kernels::ParseKernelBackend("scalar").ok());
  EXPECT_TRUE(kernels::ParseKernelBackend("simd").ok());
  EXPECT_TRUE(kernels::ParseKernelBackend("avx512").status().IsInvalidArgument());
  EXPECT_TRUE(kernels::ParseKernelBackend("").status().IsInvalidArgument());

  EXPECT_STREQ(
      kernels::ResolveKernel(kernels::KernelBackend::kScalar).name, "scalar");
  // kAuto and kSimd resolve to the same kernel (the vectorized one, or the
  // scalar fallback on hardware the build's ISA excludes — never null).
  EXPECT_EQ(&kernels::ResolveKernel(kernels::KernelBackend::kAuto),
            &kernels::ResolveKernel(kernels::KernelBackend::kSimd));
}

TEST(KernelParityTest, ActiveKernelInstallAndDispatch) {
  // The dispatching entry points follow the installed kernel; because the
  // kernels are bit-identical, both installations produce the same stats.
  std::mt19937_64 rng(99);
  ShapeCase c = MakeShapeCase(100, 3, /*subset=*/false, rng);
  const Kernel& scalar_installed =
      kernels::SetActiveKernel(kernels::KernelBackend::kScalar);
  EXPECT_STREQ(scalar_installed.name, "scalar");
  SufficientStats via_scalar = AccumulateRowBlocks(c.columns, c.y, c.rows, 16);
  const Kernel& simd_installed =
      kernels::SetActiveKernel(kernels::KernelBackend::kSimd);
  EXPECT_EQ(&kernels::ActiveKernel(), &simd_installed);
  SufficientStats via_simd = AccumulateRowBlocks(c.columns, c.y, c.rows, 16);
  EXPECT_TRUE(via_simd.BitIdenticalTo(via_scalar));
  kernels::SetActiveKernel(kernels::KernelBackend::kAuto);
}

TEST(KernelParityTest, NeumaierSumIsAnAccuracyOracleNotAKernel) {
  // Compensated summation recovers the small addend a naive fold loses —
  // which is exactly why it may never back a canonical fold: it computes
  // *different bits* than the contract fixes. It serves as the harness's
  // accuracy oracle instead.
  std::vector<double> values = {1e16, 1.0, -1e16};
  double naive = 0.0;
  for (double v : values) naive += v;
  EXPECT_EQ(naive, 0.0);  // the 1.0 is absorbed
  EXPECT_EQ(kernels::NeumaierSum(values.data(), 3), 1.0);

  // On benign data the canonical fold agrees with the oracle to high
  // relative accuracy — the headroom claim of the bench grid.
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  std::vector<double> benign(4096);
  for (double& v : benign) v = unit(rng);
  double plain = 0.0;
  for (double v : benign) plain += v;
  double compensated = kernels::NeumaierSum(benign.data(), 4096);
  EXPECT_NEAR(plain, compensated, 1e-10);
}

}  // namespace
}  // namespace charles
