#include "types/value.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace charles {
namespace {

TEST(ValueTest, KindsMatchConstruction) {
  EXPECT_EQ(Value().kind(), TypeKind::kNull);
  EXPECT_EQ(Value(int64_t{4}).kind(), TypeKind::kInt64);
  EXPECT_EQ(Value(4).kind(), TypeKind::kInt64);  // int promotes to int64
  EXPECT_EQ(Value(4.5).kind(), TypeKind::kDouble);
  EXPECT_EQ(Value("hi").kind(), TypeKind::kString);
  EXPECT_EQ(Value(true).kind(), TypeKind::kBool);
}

TEST(ValueTest, AccessorsReturnStoredValues) {
  EXPECT_EQ(Value(7).int64(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).dbl(), 2.5);
  EXPECT_EQ(Value("abc").str(), "abc");
  EXPECT_TRUE(Value(true).boolean());
}

TEST(ValueTest, AsDoubleCoercesNumerics) {
  EXPECT_DOUBLE_EQ(*Value(7).AsDouble(), 7.0);
  EXPECT_DOUBLE_EQ(*Value(2.5).AsDouble(), 2.5);
  EXPECT_TRUE(Value("x").AsDouble().status().IsTypeError());
  EXPECT_TRUE(Value(true).AsDouble().status().IsTypeError());
  EXPECT_TRUE(Value().AsDouble().status().IsTypeError());
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_EQ(Value(3), Value(3.0));
  EXPECT_NE(Value(3), Value(3.5));
}

TEST(ValueTest, NullComparesOnlyToNull) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value(0));
  EXPECT_NE(Value::Null(), Value(""));
  EXPECT_LT(Value::Null(), Value(-1000000));  // NULL sorts first
}

TEST(ValueTest, OrderingWithinTypes) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value(1.5), Value(2));
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_LT(Value(false), Value(true));
  EXPECT_GT(Value(10), Value(9.99));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value(1.05).ToString(), "1.05");
  EXPECT_EQ(Value(1000.0).ToString(), "1000");
  EXPECT_EQ(Value("s").ToString(), "s");
  EXPECT_EQ(Value(true).ToString(), "true");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(3).Hash(), Value(3.0).Hash());  // numeric cross-type
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value(3));
  EXPECT_TRUE(set.count(Value(3.0)) > 0);
}

TEST(ValueTest, HashSpreadsDistinctValues) {
  std::unordered_set<size_t> hashes;
  for (int i = 0; i < 100; ++i) hashes.insert(Value(i).Hash());
  EXPECT_GT(hashes.size(), 95u);
}

}  // namespace
}  // namespace charles
