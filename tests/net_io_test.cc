/// \file
/// The net/ layer under RemoteBackend (ISSUE 6): EINTR-safe whole-buffer
/// I/O, endpoint parsing, deadline-bounded TCP primitives, and CNF1 frame
/// round trips — including the bounded-before-allocation length checks the
/// wire-safety contract requires.

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/io.h"
#include "net/socket.h"

namespace charles {
namespace {

// --- Whole-buffer pipe I/O --------------------------------------------------

TEST(NetIoTest, WriteFullReadFullRoundTripOverPipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::string payload(100'000, 'x');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('a' + (i % 23));
  }
  std::thread writer([&]() {
    ASSERT_TRUE(net::WriteFull(fds[1], payload.data(), payload.size()).ok());
    close(fds[1]);
  });
  std::string read_back(payload.size(), '\0');
  Status status = net::ReadFull(fds[0], &read_back[0], read_back.size());
  writer.join();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(read_back, payload);
  close(fds[0]);
}

TEST(NetIoTest, ReadFullFailsOnEarlyEof) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  ASSERT_TRUE(net::WriteFull(fds[1], "abc", 3).ok());
  close(fds[1]);  // only 3 of the 10 requested bytes will ever arrive
  char buffer[10];
  Status status = net::ReadFull(fds[0], buffer, sizeof(buffer));
  EXPECT_TRUE(status.IsIOError()) << status.ToString();
  close(fds[0]);
}

TEST(NetIoTest, ReadToEofDrainsEverything) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::string payload = "the whole pipe, start to finish";
  ASSERT_TRUE(net::WriteFull(fds[1], payload.data(), payload.size()).ok());
  close(fds[1]);
  std::string out;
  ASSERT_TRUE(net::ReadToEof(fds[0], &out).ok());
  EXPECT_EQ(out, payload);
  close(fds[0]);
}

TEST(NetIoTest, WriteFullFailsWhenReadEndIsClosed) {
  // Writing into a read-closed pipe raises SIGPIPE; with it ignored (as a
  // daemon would), WriteFull must surface EPIPE as a clean IOError.
  struct sigaction ignore_pipe, old_pipe;
  std::memset(&ignore_pipe, 0, sizeof(ignore_pipe));
  ignore_pipe.sa_handler = SIG_IGN;
  ASSERT_EQ(sigaction(SIGPIPE, &ignore_pipe, &old_pipe), 0);
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  close(fds[0]);
  // Large enough to overflow the pipe buffer even if EPIPE were deferred.
  std::string payload(1 << 20, 'z');
  Status status = net::WriteFull(fds[1], payload.data(), payload.size());
  EXPECT_TRUE(status.IsIOError()) << status.ToString();
  close(fds[1]);
  ASSERT_EQ(sigaction(SIGPIPE, &old_pipe, nullptr), 0);
}

// --- Endpoint parsing -------------------------------------------------------

TEST(EndpointTest, ParsesHostPort) {
  net::Endpoint e = net::ParseEndpoint("127.0.0.1:9400").ValueOrDie();
  EXPECT_EQ(e.host, "127.0.0.1");
  EXPECT_EQ(e.port, 9400);
  EXPECT_EQ(e.ToString(), "127.0.0.1:9400");
  net::Endpoint named = net::ParseEndpoint("worker-3.cluster:65535").ValueOrDie();
  EXPECT_EQ(named.host, "worker-3.cluster");
  EXPECT_EQ(named.port, 65535);
}

TEST(EndpointTest, RejectsMalformedSpecs) {
  for (const char* bad : {"", "no-port", ":9400", "host:", "host:0",
                          "host:-1", "host:65536", "host:12abc", "host:port"}) {
    EXPECT_TRUE(net::ParseEndpoint(bad).status().IsInvalidArgument())
        << "spec: \"" << bad << "\"";
  }
}

// --- TCP primitives ---------------------------------------------------------

/// Listener on an ephemeral loopback port plus the two ends of one accepted
/// connection.
struct LoopbackPair {
  net::TcpListener listener;
  int client_fd = -1;
  int server_fd = -1;

  ~LoopbackPair() {
    net::CloseFd(client_fd);
    net::CloseFd(server_fd);
  }
};

void Connect(LoopbackPair* pair) {
  pair->listener = net::TcpListener::Bind("127.0.0.1", 0).ValueOrDie();
  ASSERT_GT(pair->listener.port(), 0);
  net::Endpoint endpoint{"127.0.0.1", pair->listener.port()};
  pair->client_fd = net::TcpConnect(endpoint, 2'000).ValueOrDie();
  pair->server_fd = pair->listener.AcceptWithTimeout(2'000).ValueOrDie();
  ASSERT_GE(pair->server_fd, 0);
}

TEST(TcpSocketTest, SendFullRecvFullRoundTrip) {
  LoopbackPair pair;
  Connect(&pair);
  std::string payload(50'000, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i % 251);
  }
  ASSERT_TRUE(net::SendFull(pair.client_fd, payload.data(), payload.size()).ok());
  std::string read_back(payload.size(), '\0');
  Status status =
      net::RecvFull(pair.server_fd, &read_back[0], read_back.size(), 5'000);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(read_back, payload);
}

TEST(TcpSocketTest, RecvFullTimesOutWhenPeerIsSilent) {
  LoopbackPair pair;
  Connect(&pair);
  char buffer[16];
  Status status = net::RecvFull(pair.server_fd, buffer, sizeof(buffer), 100);
  EXPECT_TRUE(status.IsIOError()) << status.ToString();
}

TEST(TcpSocketTest, RecvFullFailsWhenPeerHangsUpMidMessage) {
  LoopbackPair pair;
  Connect(&pair);
  ASSERT_TRUE(net::SendFull(pair.client_fd, "abc", 3).ok());
  net::CloseFd(pair.client_fd);
  pair.client_fd = -1;
  char buffer[10];  // wants 10, gets 3 then EOF
  Status status = net::RecvFull(pair.server_fd, buffer, sizeof(buffer), 2'000);
  EXPECT_TRUE(status.IsIOError()) << status.ToString();
}

TEST(TcpSocketTest, ConnectToUnboundPortFailsCleanly) {
  // Bind an ephemeral port, remember it, close the listener: nobody listens
  // there anymore, so connect must be refused (not hang).
  int dead_port;
  {
    net::TcpListener listener = net::TcpListener::Bind("127.0.0.1", 0).ValueOrDie();
    dead_port = listener.port();
  }
  Status status =
      net::TcpConnect(net::Endpoint{"127.0.0.1", dead_port}, 2'000).status();
  EXPECT_TRUE(status.IsIOError()) << status.ToString();
}

TEST(TcpSocketTest, AcceptWithTimeoutReturnsMinusOneWhenNobodyConnects) {
  net::TcpListener listener = net::TcpListener::Bind("127.0.0.1", 0).ValueOrDie();
  int fd = listener.AcceptWithTimeout(50).ValueOrDie();
  EXPECT_EQ(fd, -1);
}

// --- CNF1 frames ------------------------------------------------------------

TEST(FrameTest, RoundTripPreservesTypeAndPayload) {
  LoopbackPair pair;
  Connect(&pair);
  std::string payload = "frame payload with \0 embedded";
  payload.push_back('\0');
  ASSERT_TRUE(net::WriteFrame(pair.client_fd, 42, payload).ok());
  ASSERT_TRUE(net::WriteFrame(pair.client_fd, 7, "").ok());
  net::Frame first =
      net::ReadFrame(pair.server_fd, 2'000, int64_t{1} << 20).ValueOrDie();
  EXPECT_EQ(first.type, 42);
  EXPECT_EQ(first.payload, payload);
  net::Frame second =
      net::ReadFrame(pair.server_fd, 2'000, int64_t{1} << 20).ValueOrDie();
  EXPECT_EQ(second.type, 7);
  EXPECT_TRUE(second.payload.empty());
}

TEST(FrameTest, RejectsBadMagic) {
  LoopbackPair pair;
  Connect(&pair);
  std::string junk = "XXXX";
  int32_t type = 1;
  int64_t length = 0;
  junk.append(reinterpret_cast<const char*>(&type), sizeof(type));
  junk.append(reinterpret_cast<const char*>(&length), sizeof(length));
  ASSERT_TRUE(net::SendFull(pair.client_fd, junk.data(), junk.size()).ok());
  Status status =
      net::ReadFrame(pair.server_fd, 2'000, int64_t{1} << 20).status();
  EXPECT_TRUE(status.IsIOError()) << status.ToString();
}

TEST(FrameTest, RejectsOverLengthPayloadBeforeAllocating) {
  LoopbackPair pair;
  Connect(&pair);
  // A legitimate header claiming an absurd payload: the reader must fail on
  // the length bound without trying to allocate 2^60 bytes.
  std::string header = "CNF1";
  int32_t type = 6;
  int64_t absurd = int64_t{1} << 60;
  header.append(reinterpret_cast<const char*>(&type), sizeof(type));
  header.append(reinterpret_cast<const char*>(&absurd), sizeof(absurd));
  ASSERT_TRUE(net::SendFull(pair.client_fd, header.data(), header.size()).ok());
  Status status =
      net::ReadFrame(pair.server_fd, 2'000, int64_t{1} << 20).status();
  EXPECT_TRUE(status.IsIOError()) << status.ToString();
}

TEST(FrameTest, RejectsNegativePayloadLength) {
  LoopbackPair pair;
  Connect(&pair);
  std::string header = "CNF1";
  int32_t type = 6;
  int64_t negative = -1;
  header.append(reinterpret_cast<const char*>(&type), sizeof(type));
  header.append(reinterpret_cast<const char*>(&negative), sizeof(negative));
  ASSERT_TRUE(net::SendFull(pair.client_fd, header.data(), header.size()).ok());
  Status status =
      net::ReadFrame(pair.server_fd, 2'000, int64_t{1} << 20).status();
  EXPECT_TRUE(status.IsIOError()) << status.ToString();
}

TEST(FrameTest, FailsCleanlyOnTornStream) {
  LoopbackPair pair;
  Connect(&pair);
  // A valid header promising 100 bytes, but the peer dies after 10.
  std::string header = "CNF1";
  int32_t type = 6;
  int64_t length = 100;
  header.append(reinterpret_cast<const char*>(&type), sizeof(type));
  header.append(reinterpret_cast<const char*>(&length), sizeof(length));
  header.append(10, 'p');
  ASSERT_TRUE(net::SendFull(pair.client_fd, header.data(), header.size()).ok());
  net::CloseFd(pair.client_fd);
  pair.client_fd = -1;
  Status status =
      net::ReadFrame(pair.server_fd, 2'000, int64_t{1} << 20).status();
  EXPECT_TRUE(status.IsIOError()) << status.ToString();
}

}  // namespace
}  // namespace charles
