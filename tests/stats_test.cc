#include "linalg/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace charles {
namespace {

TEST(StatsTest, MeanVarianceStddev) {
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(Variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(Stddev(xs), 2.0);
}

TEST(StatsTest, EmptyAndSingletonInputs) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
}

TEST(StatsTest, CovarianceSign) {
  std::vector<double> xs = {1, 2, 3, 4};
  std::vector<double> up = {2, 4, 6, 8};
  std::vector<double> down = {8, 6, 4, 2};
  EXPECT_GT(Covariance(xs, up), 0.0);
  EXPECT_LT(Covariance(xs, down), 0.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {3, 5, 7, 9, 11};  // y = 2x + 1
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  std::vector<double> neg = {11, 9, 7, 5, 3};
  EXPECT_NEAR(PearsonCorrelation(xs, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantInputIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(StatsTest, PearsonUncorrelatedNearZero) {
  Rng rng(77);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(rng.Uniform());
    ys.push_back(rng.Uniform());
  }
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 0.0, 0.05);
}

TEST(StatsTest, AverageRanksHandleTies) {
  std::vector<double> ranks = AverageRanks({10, 20, 20, 30});
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(StatsTest, SpearmanDetectsMonotoneNonlinear) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {1, 8, 27, 64, 125};  // monotone cubic
  EXPECT_NEAR(SpearmanCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(StatsTest, CorrelationRatioSeparatedGroups) {
  // Group 0 around 0, group 1 around 100: eta near 1.
  std::vector<int> groups = {0, 0, 0, 1, 1, 1};
  std::vector<double> ys = {-1, 0, 1, 99, 100, 101};
  EXPECT_GT(CorrelationRatio(groups, ys), 0.99);
}

TEST(StatsTest, CorrelationRatioUninformativeGroups) {
  std::vector<int> groups = {0, 1, 0, 1};
  std::vector<double> ys = {1, 1, 5, 5};  // group means equal
  EXPECT_NEAR(CorrelationRatio(groups, ys), 0.0, 1e-12);
}

TEST(StatsTest, CorrelationRatioConstantOutcome) {
  EXPECT_DOUBLE_EQ(CorrelationRatio({0, 1, 2}, {4, 4, 4}), 0.0);
}

TEST(StatsTest, QuantileInterpolation) {
  std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(*Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(*Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(*Quantile(xs, 0.5), 2.5);
  EXPECT_TRUE(Quantile({}, 0.5).status().IsInvalidArgument());
  EXPECT_TRUE(Quantile({1.0}, 1.5).status().IsOutOfRange());
}

TEST(StatsTest, ErrorMetrics) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {2, 2, 5};
  EXPECT_DOUBLE_EQ(L1Distance(a, b), 3.0);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(a, b), 1.0);
  EXPECT_DOUBLE_EQ(RootMeanSquaredError(a, b), std::sqrt(5.0 / 3.0));
  EXPECT_DOUBLE_EQ(L1Distance(a, a), 0.0);
}

}  // namespace
}  // namespace charles
