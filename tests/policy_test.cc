#include "workload/policy.h"

#include <gtest/gtest.h>

#include <cmath>

#include "workload/example1.h"

namespace charles {
namespace {

TEST(PolicyTest, Example1PolicyReproducesFigure1Target) {
  // The planted R1-R3 policy applied to the 2016 snapshot must yield exactly
  // the paper's 2017 bonus column.
  Table source = MakeExample1Source().ValueOrDie();
  Table expected = MakeExample1Target().ValueOrDie();
  Table produced = MakeExample1Policy().Apply(source).ValueOrDie();
  auto produced_bonus = produced.ColumnAsDoubles("bonus").ValueOrDie();
  auto expected_bonus = expected.ColumnAsDoubles("bonus").ValueOrDie();
  ASSERT_EQ(produced_bonus.size(), expected_bonus.size());
  for (size_t i = 0; i < produced_bonus.size(); ++i) {
    EXPECT_NEAR(produced_bonus[i], expected_bonus[i], 1e-9) << "row " << i;
  }
}

TEST(PolicyTest, FirstMatchWins) {
  Table source = MakeExample1Source().ValueOrDie();
  Policy policy;
  LinearModel m1;
  m1.feature_names = {"bonus"};
  m1.coefficients = {2.0};
  policy.AddRule(MakeTrue(), LinearTransform::Linear("bonus", m1), "catch-all");
  LinearModel m2;
  m2.feature_names = {"bonus"};
  m2.coefficients = {3.0};
  policy.AddRule(MakeColumnCompare("edu", CompareOp::kEq, Value("PhD")),
                 LinearTransform::Linear("bonus", m2), "shadowed");
  auto rows = policy.RuleRows(source).ValueOrDie();
  EXPECT_EQ(rows[0].size(), 9);  // catch-all grabs everything
  EXPECT_TRUE(rows[1].empty());  // later rule sees nothing
}

TEST(PolicyTest, UnmatchedRowsKeepOldValues) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Policy().Apply(source).ValueOrDie();
  // Cathy (row 4) and James (row 6) are BS: untouched by R1-R3.
  EXPECT_EQ(target.GetValue(4, 5), source.GetValue(4, 5));
  EXPECT_EQ(target.GetValue(6, 5), source.GetValue(6, 5));
}

TEST(PolicyTest, NoiseChangesValues) {
  Table source = MakeExample1Source().ValueOrDie();
  PolicyApplicationOptions options;
  options.noise_stddev = 100.0;
  options.seed = 5;
  Table noisy = MakeExample1Policy().Apply(source, options).ValueOrDie();
  Table clean = MakeExample1Policy().Apply(source).ValueOrDie();
  int differing = 0;
  for (int64_t r = 0; r < source.num_rows(); ++r) {
    if (noisy.GetValue(r, 5) != clean.GetValue(r, 5)) ++differing;
  }
  EXPECT_GT(differing, 4);  // the 7 policy-covered rows got noise
}

TEST(PolicyTest, UnchangedFractionExemptsRows) {
  Table source = MakeExample1Source().ValueOrDie();
  PolicyApplicationOptions options;
  options.unchanged_fraction = 1.0;  // everyone exempted
  Table target = MakeExample1Policy().Apply(source, options).ValueOrDie();
  EXPECT_TRUE(target.Equals(source));
}

TEST(PolicyTest, RoundingSnapsValues) {
  Table source = MakeExample1Source().ValueOrDie();
  Policy policy;
  LinearModel m;
  m.feature_names = {"bonus"};
  m.coefficients = {1.0333};
  policy.AddRule(MakeTrue(), LinearTransform::Linear("bonus", m));
  PolicyApplicationOptions options;
  options.round_to = 100.0;
  Table target = policy.Apply(source, options).ValueOrDie();
  for (int64_t r = 0; r < target.num_rows(); ++r) {
    double v = target.GetValue(r, 5).AsDouble().ValueOrDie();
    EXPECT_NEAR(std::fmod(v, 100.0), 0.0, 1e-9);
  }
}

TEST(PolicyTest, EmptyPolicyRejected) {
  Table source = MakeExample1Source().ValueOrDie();
  EXPECT_TRUE(Policy().Apply(source).status().IsInvalidArgument());
}

TEST(PolicyTest, MixedTargetsRejected) {
  Policy policy;
  LinearModel m;
  m.feature_names = {"bonus"};
  m.coefficients = {1.0};
  policy.AddRule(MakeTrue(), LinearTransform::Linear("bonus", m));
  policy.AddRule(MakeTrue(), LinearTransform::Linear("salary", m));
  Table source = MakeExample1Source().ValueOrDie();
  EXPECT_TRUE(policy.Apply(source).status().IsInvalidArgument());
}

TEST(PolicyTest, ToStringListsRules) {
  std::string text = MakeExample1Policy().ToString();
  EXPECT_NE(text.find("R1"), std::string::npos);
  EXPECT_NE(text.find("edu = 'PhD'"), std::string::npos);
  EXPECT_NE(text.find("1.05"), std::string::npos);
}

TEST(RecoveryTest, PerfectSummaryScoresPerfectly) {
  Table source = MakeExample1Source().ValueOrDie();
  Policy policy = MakeExample1Policy();
  // Build a summary that mirrors the policy exactly (plus the no-change CT).
  std::vector<ConditionalTransform> cts;
  auto rule_rows = policy.RuleRows(source).ValueOrDie();
  RowSet covered;
  for (size_t i = 0; i < policy.rules().size(); ++i) {
    ConditionalTransform ct;
    ct.condition = policy.rules()[i].condition;
    ct.transform = policy.rules()[i].transform;
    ct.rows = rule_rows[i];
    ct.coverage = rule_rows[i].Coverage(source.num_rows());
    covered = covered.Union(ct.rows);
    cts.push_back(std::move(ct));
  }
  ConditionalTransform none;
  none.condition = MakeColumnCompare("edu", CompareOp::kEq, Value("BS"));
  none.transform = LinearTransform::NoChange("bonus");
  none.rows = covered.Complement(source.num_rows());
  cts.push_back(std::move(none));
  ChangeSummary summary(std::move(cts), "bonus");

  RecoveryReport report = EvaluateRecovery(policy, summary, source).ValueOrDie();
  EXPECT_DOUBLE_EQ(report.rule_precision, 1.0);
  EXPECT_DOUBLE_EQ(report.rule_recall, 1.0);
  EXPECT_DOUBLE_EQ(report.f1, 1.0);
  EXPECT_NEAR(report.mean_coefficient_error, 0.0, 1e-9);
}

TEST(RecoveryTest, WrongCoefficientsLowerRecall) {
  Table source = MakeExample1Source().ValueOrDie();
  Policy policy = MakeExample1Policy();
  // Same partitions, but a badly wrong coefficient on R1.
  auto rule_rows = policy.RuleRows(source).ValueOrDie();
  std::vector<ConditionalTransform> cts;
  for (size_t i = 0; i < policy.rules().size(); ++i) {
    ConditionalTransform ct;
    ct.condition = policy.rules()[i].condition;
    if (i == 0) {
      LinearModel wrong;
      wrong.feature_names = {"bonus"};
      wrong.coefficients = {2.0};  // planted: 1.05
      wrong.intercept = 0;
      ct.transform = LinearTransform::Linear("bonus", wrong);
    } else {
      ct.transform = policy.rules()[i].transform;
    }
    ct.rows = rule_rows[i];
    cts.push_back(std::move(ct));
  }
  ChangeSummary summary(std::move(cts), "bonus");
  RecoveryReport report = EvaluateRecovery(policy, summary, source).ValueOrDie();
  EXPECT_LT(report.rule_recall, 1.0);
  EXPECT_GT(report.rule_recall, 0.0);
}

TEST(RecoveryTest, EmptySummaryScoresZeroPrecision) {
  Table source = MakeExample1Source().ValueOrDie();
  ChangeSummary summary({}, "bonus");
  RecoveryReport report =
      EvaluateRecovery(MakeExample1Policy(), summary, source).ValueOrDie();
  EXPECT_DOUBLE_EQ(report.rule_precision, 0.0);
  EXPECT_DOUBLE_EQ(report.rule_recall, 0.0);
}

}  // namespace
}  // namespace charles
