#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/normality.h"
#include "core/partition_finder.h"
#include "core/scoring.h"
#include "workload/example1.h"

namespace charles {
namespace {

TEST(CanonicalizeLabelsTest, FirstAppearanceRenumbering) {
  EXPECT_EQ(PartitionFinder::CanonicalizeLabels({2, 2, 0, 1, 0}),
            (std::vector<int>{0, 0, 1, 2, 1}));
  EXPECT_EQ(PartitionFinder::CanonicalizeLabels({0, 1, 2}), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(PartitionFinder::CanonicalizeLabels({5, 5, 5}), (std::vector<int>{0, 0, 0}));
  EXPECT_TRUE(PartitionFinder::CanonicalizeLabels({}).empty());
}

TEST(CanonicalizeLabelsTest, EquivalentClusteringsCollide) {
  // Same partition, different label names, must canonicalize identically.
  std::vector<int> a = {0, 0, 1, 1, 2};
  std::vector<int> b = {2, 2, 0, 0, 1};
  EXPECT_EQ(PartitionFinder::CanonicalizeLabels(a),
            PartitionFinder::CanonicalizeLabels(b));
}

class CacheEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    source_ = MakeExample1Source().ValueOrDie();
    target_ = MakeExample1Target().ValueOrDie();
    y_old_ = *source_.ColumnAsDoubles("bonus");
    y_new_ = *target_.ColumnAsDoubles("bonus");
    options_.target_attribute = "bonus";
    options_.key_columns = {"name"};
  }

  PartitionCandidate MakeCandidate() {
    PartitionFinder::Input input;
    input.source = &source_;
    input.y_old = &y_old_;
    input.y_new = &y_new_;
    input.transform_attrs = {"bonus"};
    int edu = *source_.schema().FieldIndex("edu");
    int exp = *source_.schema().FieldIndex("exp");
    auto candidates =
        PartitionFinder::Find(input, {edu, exp}, options_).ValueOrDie();
    // Pick the largest partitioning (most leaves to exercise the cache).
    size_t best = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].leaves.size() > candidates[best].leaves.size()) best = i;
    }
    return candidates[best];
  }

  Table source_;
  Table target_;
  std::vector<double> y_old_;
  std::vector<double> y_new_;
  CharlesOptions options_;
};

TEST_F(CacheEquivalenceTest, CachedAndUncachedSummariesAgree) {
  CharlesEngine engine(options_);
  PartitionCandidate candidate = MakeCandidate();
  CharlesEngine::LeafFitCache cache;
  ChangeSummary cached = engine
                             .BuildSummary(source_, y_old_, y_new_, candidate,
                                           {"bonus"}, {"edu", "exp"}, &cache)
                             .ValueOrDie();
  ChangeSummary uncached = engine
                               .BuildSummary(source_, y_old_, y_new_, candidate,
                                             {"bonus"}, {"edu", "exp"}, nullptr)
                               .ValueOrDie();
  EXPECT_EQ(cached.Signature(), uncached.Signature());
  EXPECT_DOUBLE_EQ(cached.scores().score, uncached.scores().score);
  EXPECT_FALSE(cache.empty());

  // Second cached call must hit (same fits, same result).
  size_t cache_size = cache.size();
  ChangeSummary again = engine
                            .BuildSummary(source_, y_old_, y_new_, candidate,
                                          {"bonus"}, {"edu", "exp"}, &cache)
                            .ValueOrDie();
  EXPECT_EQ(cache.size(), cache_size);
  EXPECT_EQ(again.Signature(), cached.Signature());
}

TEST(ReadabilityBudgetTest, HugeSummariesLoseInterpretability) {
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  int64_t n = 100;
  std::vector<double> y(static_cast<size_t>(n), 1.0);
  Scorer scorer(options, y, y);

  auto summary_with_cts = [&](int count) {
    std::vector<ConditionalTransform> cts;
    for (int i = 0; i < count; ++i) {
      ConditionalTransform ct;
      ct.condition = MakeColumnCompare("name", CompareOp::kEq,
                                       Value("p" + std::to_string(i)));
      ct.transform = LinearTransform::NoChange("bonus");
      ct.rows = RowSet({i});
      ct.coverage = 1.0 / static_cast<double>(n);
      cts.push_back(std::move(ct));
    }
    return ChangeSummary(std::move(cts), "bonus");
  };
  double at_10 = scorer.InterpretabilityOnly(summary_with_cts(10)).interpretability;
  double at_100 = scorer.InterpretabilityOnly(summary_with_cts(100)).interpretability;
  // Beyond the ~10-CT budget interpretability must fall off sharply, not
  // saturate at the per-CT simplicity floor.
  EXPECT_LT(at_100, at_10 * 0.2);
}

TEST(MaxPartitionsTest, CapBoundsPhase3) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  options.max_partitions = 3;
  SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
  EXPECT_LE(result.partitions, 3);
  EXPECT_FALSE(result.summaries.empty());
}

TEST(PhaseTimingsTest, Populated) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
  EXPECT_GE(result.clustering_seconds, 0.0);
  EXPECT_GE(result.induction_seconds, 0.0);
  EXPECT_GE(result.fitting_seconds, 0.0);
  EXPECT_GE(result.elapsed_seconds, result.clustering_seconds);
  EXPECT_GT(result.labelings, 0);
  EXPECT_GT(result.partitions, 0);
}

TEST(SnapZeroTest, FloatingPointResidueInterceptsSnapToZero) {
  // y = 1.02 x exactly; the "fitted" model carries an fp-noise intercept.
  Matrix x = Matrix::FromRows({{50000}, {60000}, {70000}, {80000}});
  std::vector<double> y;
  for (int64_t r = 0; r < x.rows(); ++r) y.push_back(1.02 * x.At(r, 0));
  LinearModel fitted;
  fitted.coefficients = {1.02};
  fitted.feature_names = {"salary"};
  fitted.intercept = 0.00008;
  NormalityOptions options;
  LinearModel snapped = SnapModel(fitted, x, y, options);
  EXPECT_DOUBLE_EQ(snapped.intercept, 0.0);
  EXPECT_DOUBLE_EQ(snapped.coefficients[0], 1.02);
}

}  // namespace
}  // namespace charles
