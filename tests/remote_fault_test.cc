/// \file
/// RemoteBackend fault tolerance (ISSUE 6 satellite): a remote worker
/// SIGKILLed mid-shard must be marked unhealthy and its task reassigned to
/// a surviving worker, with the merged output still bit-identical to an
/// in-process run — at the coordinator level and through a full engine run.
///
/// The killer worker is a forked charles_worker-shaped process (a real
/// WorkerService over a real TCP listener) whose task hook raises SIGKILL
/// on the first kExecuteTask, so the connection tears exactly mid-request.
/// Fork-based: keep these tests out of any TSan test filter.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "distributed/coordinator.h"
#include "distributed/in_process_backend.h"
#include "distributed/remote_backend.h"
#include "distributed/shard_planner.h"
#include "distributed/worker_service.h"
#include "net/io.h"
#include "net/socket.h"
#include "workload/employee_gen.h"

namespace charles {
namespace {

struct SyntheticInput {
  std::vector<std::string> shortlist;
  ColumnCache columns;
  std::vector<double> y_old;
  std::vector<double> y_new;
  std::vector<RowSet> leaf_storage;
  ShardInput input;
};

SyntheticInput MakeSyntheticInput(int64_t rows) {
  SyntheticInput s;
  s.shortlist = {"a", "b"};
  std::vector<double> a(static_cast<size_t>(rows)), b(static_cast<size_t>(rows));
  s.y_old.resize(static_cast<size_t>(rows));
  s.y_new.resize(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    size_t i = static_cast<size_t>(r);
    a[i] = 1000.0 + 3.0 * static_cast<double>(r);
    b[i] = 50.0 - 0.25 * static_cast<double>(r % 97);
    s.y_old[i] = 10.0 + 0.5 * a[i];
    s.y_new[i] = (r % 3 == 0) ? s.y_old[i] : 1.05 * s.y_old[i] + 2.0 * b[i];
  }
  s.columns.Insert("a", std::move(a));
  s.columns.Insert("b", std::move(b));
  std::vector<int64_t> stride, prefix;
  for (int64_t r = 0; r < rows; r += 3) stride.push_back(r);
  for (int64_t r = 0; r < rows / 2; ++r) prefix.push_back(r);
  s.leaf_storage.push_back(RowSet::All(rows));
  s.leaf_storage.push_back(RowSet(std::move(stride)));
  s.leaf_storage.push_back(RowSet(std::move(prefix)));
  s.input.shortlist = &s.shortlist;
  s.input.columns = &s.columns;
  s.input.y_old = &s.y_old;
  s.input.y_new = &s.y_new;
  for (const RowSet& leaf : s.leaf_storage) s.input.leaves.push_back(&leaf);
  return s;
}

ShardTask MakeMomentsTask(const ShardInput& input) {
  ShardTask task;
  task.kind = ShardTaskKind::kLeafMoments;
  for (size_t l = 0; l < input.leaves.size(); ++l) {
    task.leaves.push_back(static_cast<int64_t>(l));
  }
  return task;
}

ShardTask MakeSignalTask() {
  ShardTask task;
  task.kind = ShardTaskKind::kSignalStats;
  return task;
}

ShardTask MakeErrorTask() {
  ShardTask task;
  task.kind = ShardTaskKind::kErrorPartials;
  ErrorProbe p0;
  p0.leaf = 0;
  p0.features = {0};
  p0.intercept = 12.5;
  p0.coefficients = {1.05};
  task.probes.push_back(p0);
  ErrorProbe p1;
  p1.leaf = 1;
  p1.features = {0, 1};
  p1.intercept = -3.0;
  p1.coefficients = {0.5, 2.0};
  task.probes.push_back(p1);
  return task;
}

void ExpectBitIdenticalMerges(const CoordinatorTaskResult& expected,
                              const CoordinatorTaskResult& actual) {
  EXPECT_EQ(expected.kind, actual.kind);
  EXPECT_EQ(expected.rows_scanned, actual.rows_scanned);
  ASSERT_EQ(expected.leaves.size(), actual.leaves.size());
  for (size_t l = 0; l < expected.leaves.size(); ++l) {
    EXPECT_TRUE(expected.leaves[l].stats.BitIdenticalTo(actual.leaves[l].stats))
        << "leaf " << l;
    EXPECT_EQ(std::memcmp(&expected.leaves[l].max_abs_delta,
                          &actual.leaves[l].max_abs_delta, sizeof(double)),
              0);
  }
  EXPECT_TRUE(expected.signal_stats.BitIdenticalTo(actual.signal_stats));
  EXPECT_EQ(expected.signal_rows_changed, actual.signal_rows_changed);
  ASSERT_EQ(expected.probes.size(), actual.probes.size());
  for (size_t p = 0; p < expected.probes.size(); ++p) {
    EXPECT_TRUE(
        expected.probes[p].partials.BitIdenticalTo(actual.probes[p].partials))
        << "probe " << p;
  }
  ASSERT_EQ(expected.score_probes.size(), actual.score_probes.size());
  for (size_t p = 0; p < expected.score_probes.size(); ++p) {
    EXPECT_TRUE(expected.score_probes[p].partials.BitIdenticalTo(
        actual.score_probes[p].partials))
        << "score probe " << p;
  }
}

/// A forked worker process that serves the remote protocol normally until
/// its first kExecuteTask, then raises SIGKILL mid-request — the hard-loss
/// shape (no FIN from a clean close of the process's sockets happens before
/// the kernel reaps it, so the coordinator sees a torn stream).
struct KillerWorker {
  pid_t pid = -1;
  int port = 0;

  std::string endpoint() const { return "127.0.0.1:" + std::to_string(port); }

  /// SIGKILL (idempotent; it is usually already dead) + reap.
  void Reap() {
    if (pid <= 0) return;
    kill(pid, SIGKILL);
    int wait_status = 0;
    waitpid(pid, &wait_status, 0);
    pid = -1;
  }
};

KillerWorker SpawnKillerWorker() {
  int port_pipe[2];
  EXPECT_EQ(pipe(port_pipe), 0);
  pid_t pid = fork();
  if (pid == 0) {
    // Child: bind an ephemeral loopback port, report it, serve until the
    // first task's hook kills us.
    close(port_pipe[0]);
    Result<net::TcpListener> bound = net::TcpListener::Bind("127.0.0.1", 0);
    if (!bound.ok()) _exit(3);
    net::TcpListener listener = std::move(bound).ValueOrDie();
    int port = listener.port();
    if (!net::WriteFull(port_pipe[1], &port, sizeof(port)).ok()) _exit(4);
    close(port_pipe[1]);
    WorkerServiceOptions options;
    options.task_hook = [](int64_t) { raise(SIGKILL); };
    WorkerService service(std::move(options));
    service.Serve(listener, nullptr);
    _exit(0);
  }
  close(port_pipe[1]);
  KillerWorker worker;
  worker.pid = pid;
  EXPECT_TRUE(net::ReadFull(port_pipe[0], &worker.port, sizeof(worker.port)).ok());
  close(port_pipe[0]);
  return worker;
}

TEST(RemoteFaultTest, WorkerKilledMidShardIsReassignedBitIdentically) {
  SyntheticInput s = MakeSyntheticInput(500);
  KillerWorker killer = SpawnKillerWorker();
  ASSERT_GT(killer.port, 0);
  std::unique_ptr<LoopbackWorker> survivor = LoopbackWorker::Start().ValueOrDie();
  RemoteBackendOptions options;
  // The killer is listed first so the round-robin hands it the first task.
  options.endpoints = {killer.endpoint(), survivor->endpoint()};
  options.retry_backoff_ms = 1;
  std::unique_ptr<RemoteBackend> remote =
      RemoteBackend::Create(std::move(options)).ValueOrDie();
  InProcessBackend in_process;
  ShardPlan plan = PlanShards(500, 64, 8);
  for (const ShardTask& task :
       {MakeMomentsTask(s.input), MakeSignalTask(), MakeErrorTask()}) {
    SCOPED_TRACE(ShardTaskKindName(task.kind));
    CoordinatorTaskResult expected =
        Coordinator::RunTask(s.input, plan, &in_process, nullptr, task)
            .ValueOrDie();
    CoordinatorTaskResult actual =
        Coordinator::RunTask(s.input, plan, remote.get(), nullptr, task)
            .ValueOrDie();
    ExpectBitIdenticalMerges(expected, actual);
  }
  RemoteBackendDiagnostics diagnostics = remote->Diagnostics();
  EXPECT_GE(diagnostics.task_retries, 1);
  ASSERT_EQ(diagnostics.workers.size(), 2u);
  EXPECT_FALSE(diagnostics.workers[0].healthy);
  EXPECT_FALSE(diagnostics.workers[0].version_rejected);
  EXPECT_GE(diagnostics.workers[0].tasks_failed, 1);
  EXPECT_TRUE(diagnostics.workers[1].healthy);
  EXPECT_GT(diagnostics.workers[1].tasks_dispatched, 0);
  killer.Reap();
}

TEST(RemoteFaultTest, AllWorkersLostSurfacesABoundedError) {
  SyntheticInput s = MakeSyntheticInput(300);
  KillerWorker killer = SpawnKillerWorker();
  ASSERT_GT(killer.port, 0);
  RemoteBackendOptions options;
  options.endpoints = {killer.endpoint()};  // no survivor to fail over to
  options.retry_backoff_ms = 1;
  options.max_task_retries = 2;
  std::unique_ptr<RemoteBackend> remote =
      RemoteBackend::Create(std::move(options)).ValueOrDie();
  ShardPlan plan = PlanShards(300, 64, 2);
  Status status =
      remote->ExecuteTask(s.input, plan, 0, MakeSignalTask()).status();
  ASSERT_TRUE(status.IsIOError()) << status.ToString();
  EXPECT_NE(status.message().find("attempts"), std::string::npos)
      << status.ToString();
  killer.Reap();
}

// --- Engine level: worker dies inside a real run ----------------------------

void ExpectIdenticalRuns(const SummaryList& expected, const SummaryList& actual) {
  ASSERT_EQ(expected.summaries.size(), actual.summaries.size());
  for (size_t i = 0; i < expected.summaries.size(); ++i) {
    const ChangeSummary& a = expected.summaries[i];
    const ChangeSummary& b = actual.summaries[i];
    EXPECT_EQ(a.Signature(), b.Signature()) << "rank " << i;
    double sa = a.scores().score, sb = b.scores().score;
    double aa = a.scores().accuracy, ab = b.scores().accuracy;
    EXPECT_EQ(std::memcmp(&sa, &sb, sizeof(double)), 0) << "rank " << i;
    EXPECT_EQ(std::memcmp(&aa, &ab, sizeof(double)), 0) << "rank " << i;
    EXPECT_EQ(a.ToString(), b.ToString()) << "rank " << i;
  }
  EXPECT_EQ(expected.labelings, actual.labelings);
  EXPECT_EQ(expected.partitions, actual.partitions);
  EXPECT_EQ(expected.candidates_evaluated, actual.candidates_evaluated);
  EXPECT_EQ(expected.candidates_deduped, actual.candidates_deduped);
}

TEST(RemoteFaultTest, EngineRunSurvivesWorkerLossBitIdentically) {
  EmployeeGenOptions gen;
  gen.num_rows = 600;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
  CharlesOptions base;
  base.target_attribute = "bonus";
  base.key_columns = {"emp_id"};
  base.stats_block_rows = 64;
  base.num_threads = 2;
  SummaryList unsharded = SummarizeChanges(source, target, base).ValueOrDie();
  ASSERT_FALSE(unsharded.summaries.empty());

  // Fork the killer only after the baseline run's pool has been joined, so
  // the child is created from a single-threaded process.
  KillerWorker killer = SpawnKillerWorker();
  ASSERT_GT(killer.port, 0);
  std::unique_ptr<LoopbackWorker> survivor = LoopbackWorker::Start().ValueOrDie();

  CharlesOptions sharded_options = base;
  sharded_options.num_shards = 4;
  sharded_options.shard_backend = ShardBackendKind::kRemote;
  sharded_options.remote_workers = {killer.endpoint(), survivor->endpoint()};
  sharded_options.remote_retry_backoff_ms = 1;
  SummaryList sharded =
      SummarizeChanges(source, target, sharded_options).ValueOrDie();
  EXPECT_EQ(sharded.shards_used, 4);
  ExpectIdenticalRuns(unsharded, sharded);

  // The loss is visible in the run's diagnostics: at least one reassignment,
  // and the killer ended the run unhealthy while the survivor carried it.
  EXPECT_GE(sharded.remote_task_retries, 1);
  ASSERT_EQ(sharded.remote_workers.size(), 2u);
  bool killer_seen = false;
  for (const RemoteWorkerCounters& worker : sharded.remote_workers) {
    if (worker.endpoint == killer.endpoint()) {
      killer_seen = true;
      EXPECT_FALSE(worker.healthy);
    } else {
      EXPECT_TRUE(worker.healthy);
      EXPECT_GT(worker.tasks_dispatched, 0);
    }
  }
  EXPECT_TRUE(killer_seen);
  killer.Reap();
}

}  // namespace
}  // namespace charles
