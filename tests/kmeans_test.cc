#include "ml/kmeans.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"

namespace charles {
namespace {

/// n points per centre, tightly grouped around the given 1-D centres.
Matrix MakeBlobs(const std::vector<double>& centres, int per_centre, double spread,
                 uint64_t seed) {
  Rng rng(seed);
  Matrix points(static_cast<int64_t>(centres.size()) * per_centre, 1);
  int64_t row = 0;
  for (double centre : centres) {
    for (int i = 0; i < per_centre; ++i) {
      points.At(row++, 0) = centre + rng.Normal(0, spread);
    }
  }
  return points;
}

TEST(KMeansTest, SeparatesWellSpacedBlobs) {
  Matrix points = MakeBlobs({0.0, 100.0, 200.0}, 20, 1.0, 1);
  KMeansResult result = KMeans::Fit(points, 3).ValueOrDie();
  // Each blob must map to exactly one cluster.
  for (int blob = 0; blob < 3; ++blob) {
    std::set<int> labels;
    for (int i = 0; i < 20; ++i) labels.insert(result.labels[blob * 20 + i]);
    EXPECT_EQ(labels.size(), 1u) << "blob " << blob << " split across clusters";
  }
  EXPECT_LT(result.inertia, 3 * 20 * 9.0);  // within ~3 sigma per point
}

TEST(KMeansTest, KEqualsOneGivesSingleCluster) {
  Matrix points = MakeBlobs({0.0, 50.0}, 10, 1.0, 2);
  KMeansResult result = KMeans::Fit(points, 1).ValueOrDie();
  for (int label : result.labels) EXPECT_EQ(label, 0);
  EXPECT_EQ(result.centroids.rows(), 1);
}

TEST(KMeansTest, KEqualsNPutsEachPointAlone) {
  Matrix points = Matrix::FromRows({{0}, {10}, {20}});
  KMeansResult result = KMeans::Fit(points, 3).ValueOrDie();
  std::set<int> labels(result.labels.begin(), result.labels.end());
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, DeterministicUnderSeed) {
  Matrix points = MakeBlobs({0.0, 30.0, 90.0}, 15, 2.0, 3);
  KMeansOptions options;
  options.seed = 777;
  KMeansResult a = KMeans::Fit(points, 3, options).ValueOrDie();
  KMeansResult b = KMeans::Fit(points, 3, options).ValueOrDie();
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeansTest, InputValidation) {
  Matrix points = Matrix::FromRows({{1}, {2}});
  EXPECT_TRUE(KMeans::Fit(points, 0).status().IsInvalidArgument());
  EXPECT_TRUE(KMeans::Fit(points, 3).status().IsInvalidArgument());
  EXPECT_TRUE(KMeans::Fit(Matrix(0, 1), 1).status().IsInvalidArgument());
}

TEST(KMeansTest, IdenticalPointsDoNotCrash) {
  Matrix points(10, 1, 5.0);
  KMeansResult result = KMeans::Fit(points, 3).ValueOrDie();
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, MultiDimensionalPoints) {
  Rng rng(5);
  Matrix points(40, 2);
  for (int i = 0; i < 20; ++i) {
    points.At(i, 0) = rng.Normal(0, 1);
    points.At(i, 1) = rng.Normal(0, 1);
    points.At(20 + i, 0) = rng.Normal(50, 1);
    points.At(20 + i, 1) = rng.Normal(50, 1);
  }
  KMeansResult result = KMeans::Fit(points, 2).ValueOrDie();
  EXPECT_NE(result.labels[0], result.labels[39]);
}

TEST(SilhouetteTest, HighForSeparatedClusters) {
  Matrix points = MakeBlobs({0.0, 100.0}, 20, 1.0, 7);
  KMeansResult result = KMeans::Fit(points, 2).ValueOrDie();
  EXPECT_GT(SilhouetteScore(points, result.labels), 0.9);
}

TEST(SilhouetteTest, LowForArbitrarySplitOfOneBlob) {
  Matrix points = MakeBlobs({0.0}, 40, 1.0, 8);
  KMeansResult result = KMeans::Fit(points, 2).ValueOrDie();
  EXPECT_LT(SilhouetteScore(points, result.labels), 0.6);
}

TEST(SilhouetteTest, DegenerateInputsScoreZero) {
  Matrix points = Matrix::FromRows({{0}, {1}});
  EXPECT_DOUBLE_EQ(SilhouetteScore(points, {0, 1}), 0.0);  // n < 3
  Matrix more = Matrix::FromRows({{0}, {1}, {2}});
  EXPECT_DOUBLE_EQ(SilhouetteScore(more, {0, 0, 0}), 0.0);  // single cluster
}

TEST(FitBestKTest, FindsPlantedK) {
  for (int planted_k : {2, 3, 4}) {
    std::vector<double> centres;
    for (int i = 0; i < planted_k; ++i) centres.push_back(i * 100.0);
    Matrix points = MakeBlobs(centres, 25, 1.0, 11 + static_cast<uint64_t>(planted_k));
    KMeansResult result = FitBestK(points, 1, 6).ValueOrDie();
    EXPECT_EQ(result.k, planted_k);
  }
}

TEST(FitBestKTest, CollapsesToOneForUnstructuredData) {
  Matrix points = MakeBlobs({0.0}, 60, 1.0, 13);
  KMeansResult result = FitBestK(points, 1, 5).ValueOrDie();
  EXPECT_EQ(result.k, 1);
}

TEST(FitBestKTest, RejectsBadRange) {
  Matrix points = Matrix::FromRows({{1}, {2}});
  EXPECT_TRUE(FitBestK(points, 0, 3).status().IsInvalidArgument());
  EXPECT_TRUE(FitBestK(points, 3, 2).status().IsInvalidArgument());
}

}  // namespace
}  // namespace charles
