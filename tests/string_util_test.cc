#include "common/string_util.h"

#include <gtest/gtest.h>

namespace charles {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, EmptyPiecesPreserved) {
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
}

TEST(SplitTest, EmptyInputYieldsOnePiece) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> pieces = {"x", "", "yz"};
  EXPECT_EQ(Split(Join(pieces, ";"), ';'), pieces);
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(CaseTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("AbC9"), "abc9");
  EXPECT_EQ(ToUpper("AbC9"), "ABC9");
}

TEST(CaseTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("TRUE", "true"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("true", "tru"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("charles", "char"));
  EXPECT_FALSE(StartsWith("char", "charles"));
  EXPECT_TRUE(EndsWith("charles", "les"));
  EXPECT_FALSE(EndsWith("les", "charles"));
}

TEST(ParseInt64Test, ValidInputs) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64("-7"), -7);
  EXPECT_EQ(ParseInt64(" 13 "), 13);
  EXPECT_EQ(ParseInt64("0"), 0);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("4.2").has_value());
  EXPECT_FALSE(ParseInt64("12abc").has_value());
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").has_value());
}

TEST(ParseDoubleTest, ValidInputs) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("42"), 42.0);
}

TEST(ParseDoubleTest, RejectsGarbageAndNonFinite) {
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1.2.3").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("nan").has_value());
  EXPECT_FALSE(ParseDouble("inf").has_value());
}

TEST(ParseBoolTest, RecognizedSpellings) {
  EXPECT_EQ(ParseBool("true"), true);
  EXPECT_EQ(ParseBool("FALSE"), false);
  EXPECT_EQ(ParseBool("1"), true);
  EXPECT_EQ(ParseBool("0"), false);
  EXPECT_FALSE(ParseBool("yes").has_value());
}

TEST(FormatDoubleTest, IntegralValuesPrintWithoutPoint) {
  EXPECT_EQ(FormatDouble(1000.0), "1000");
  EXPECT_EQ(FormatDouble(-3.0), "-3");
  EXPECT_EQ(FormatDouble(0.0), "0");
}

TEST(FormatDoubleTest, TrailingZerosTrimmed) {
  EXPECT_EQ(FormatDouble(1.05), "1.05");
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(1.234567, 3), "1.235");
}

TEST(FormatDoubleTest, NonFinite) {
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(FormatDouble(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(PadTest, PadRightAndLeft) {
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("abcd", 2), "abcd");  // never truncates below content
  EXPECT_EQ(PadLeft("abcd", 2), "abcd");
}

}  // namespace
}  // namespace charles
