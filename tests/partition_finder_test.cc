#include "core/partition_finder.h"

#include <gtest/gtest.h>

#include "parallel/thread_pool.h"
#include "workload/example1.h"

namespace charles {
namespace {

struct Example1Fixture {
  Table source;
  std::vector<double> y_old;
  std::vector<double> y_new;
  CharlesOptions options;

  Example1Fixture()
      : source(MakeExample1Source().ValueOrDie()),
        y_old(*source.ColumnAsDoubles("bonus")),
        y_new(*MakeExample1Target().ValueOrDie().ColumnAsDoubles("bonus")) {
    options.target_attribute = "bonus";
    options.key_columns = {"name"};
  }

  PartitionFinder::Input MakeInput(std::vector<std::string> transform_attrs) {
    PartitionFinder::Input input;
    input.source = &source;
    input.y_old = &y_old;
    input.y_new = &y_new;
    input.transform_attrs = std::move(transform_attrs);
    return input;
  }
};

TEST(PartitionFinderTest, GlobalModelFitsBonusTrend) {
  Example1Fixture fx;
  auto input = fx.MakeInput({"bonus"});
  LinearModel global = PartitionFinder::FitGlobalModel(input).ValueOrDie();
  // One global line cannot explain the four groups exactly.
  EXPECT_GT(global.mae, 0.0);
  EXPECT_GT(global.r2, 0.9);  // but the trend is strongly linear
}

TEST(PartitionFinderTest, ClusteringsCoverMultipleSignalsAndK) {
  Example1Fixture fx;
  auto input = fx.MakeInput({"bonus"});
  auto clusterings = PartitionFinder::ClusterResiduals(input, fx.options).ValueOrDie();
  EXPECT_GT(clusterings.clusterings.size(), 3u);
  // All labelings must be distinct (dedup holds).
  for (size_t i = 0; i < clusterings.clusterings.size(); ++i) {
    for (size_t j = i + 1; j < clusterings.clusterings.size(); ++j) {
      EXPECT_NE(clusterings.clusterings[i].labels, clusterings.clusterings[j].labels);
    }
  }
}

TEST(PartitionFinderTest, FindsFigure2Partitioning) {
  Example1Fixture fx;
  int edu = *fx.source.schema().FieldIndex("edu");
  int exp = *fx.source.schema().FieldIndex("exp");
  auto candidates =
      PartitionFinder::Find(fx.MakeInput({"bonus"}), {edu, exp}, fx.options)
          .ValueOrDie();
  // One candidate must carve out exactly the paper's four groups:
  // {PhD}, {MS, exp>=3}, {MS, exp<3}, {BS}.
  std::vector<RowSet> expected = {RowSet({0, 1, 8}), RowSet({2, 5, 7}), RowSet({3}),
                                  RowSet({4, 6})};
  bool found = false;
  for (const auto& candidate : candidates) {
    if (candidate.leaves.size() != 4) continue;
    int matches = 0;
    for (const RowSet& group : expected) {
      for (const auto& leaf : candidate.leaves) {
        if (leaf.rows == group) {
          ++matches;
          break;
        }
      }
    }
    if (matches == 4) found = true;
  }
  EXPECT_TRUE(found) << "no candidate matched the Figure-2 partitioning among "
                     << candidates.size();
}

TEST(PartitionFinderTest, KEqualsOneYieldsUniversalPartition) {
  Example1Fixture fx;
  int edu = *fx.source.schema().FieldIndex("edu");
  auto candidates =
      PartitionFinder::Find(fx.MakeInput({"bonus"}), {edu}, fx.options).ValueOrDie();
  bool found_universal = false;
  for (const auto& candidate : candidates) {
    if (candidate.leaves.size() == 1 &&
        candidate.leaves[0].condition->Equals(*MakeTrue())) {
      found_universal = true;
      EXPECT_EQ(candidate.leaves[0].rows.size(), 9);
    }
  }
  EXPECT_TRUE(found_universal);
}

TEST(PartitionFinderTest, EmptyTransformSetUsesInterceptOnlyModel) {
  Example1Fixture fx;
  int edu = *fx.source.schema().FieldIndex("edu");
  auto candidates =
      PartitionFinder::Find(fx.MakeInput({}), {edu}, fx.options).ValueOrDie();
  EXPECT_FALSE(candidates.empty());
}

TEST(PartitionFinderTest, CandidatesAreStructurallyDeduplicated) {
  Example1Fixture fx;
  int edu = *fx.source.schema().FieldIndex("edu");
  int exp = *fx.source.schema().FieldIndex("exp");
  auto candidates =
      PartitionFinder::Find(fx.MakeInput({"bonus"}), {edu, exp}, fx.options)
          .ValueOrDie();
  std::set<std::string> signatures;
  for (const auto& candidate : candidates) {
    std::set<std::string> conditions;
    for (const auto& leaf : candidate.leaves) {
      conditions.insert(leaf.condition->ToString());
    }
    std::string signature;
    for (const auto& c : conditions) signature += c + ";";
    EXPECT_TRUE(signatures.insert(signature).second) << "duplicate: " << signature;
  }
}

TEST(PartitionFinderTest, LeavesPartitionAllRows) {
  Example1Fixture fx;
  int edu = *fx.source.schema().FieldIndex("edu");
  int exp = *fx.source.schema().FieldIndex("exp");
  auto candidates =
      PartitionFinder::Find(fx.MakeInput({"bonus"}), {edu, exp}, fx.options)
          .ValueOrDie();
  for (const auto& candidate : candidates) {
    RowSet all;
    int64_t total = 0;
    for (const auto& leaf : candidate.leaves) {
      all = all.Union(leaf.rows);
      total += leaf.rows.size();
    }
    EXPECT_EQ(all, RowSet::All(9));
    EXPECT_EQ(total, 9);
  }
}

TEST(PartitionFinderTest, PooledFindMatchesSerial) {
  Example1Fixture fx;
  int edu = *fx.source.schema().FieldIndex("edu");
  int exp = *fx.source.schema().FieldIndex("exp");
  auto input = fx.MakeInput({"bonus"});
  std::vector<PartitionCandidate> serial =
      PartitionFinder::Find(input, {edu, exp}, fx.options).ValueOrDie();
  ThreadPool pool(4);
  std::vector<PartitionCandidate> pooled =
      PartitionFinder::Find(input, {edu, exp}, fx.options, &pool).ValueOrDie();
  ASSERT_EQ(serial.size(), pooled.size());
  ASSERT_FALSE(serial.empty());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].leaves.size(), pooled[i].leaves.size()) << "candidate " << i;
    for (size_t l = 0; l < serial[i].leaves.size(); ++l) {
      EXPECT_EQ(serial[i].leaves[l].condition->ToString(),
                pooled[i].leaves[l].condition->ToString());
      EXPECT_EQ(serial[i].leaves[l].rows, pooled[i].leaves[l].rows);
    }
    EXPECT_EQ(serial[i].k, pooled[i].k);
    EXPECT_EQ(serial[i].label_agreement, pooled[i].label_agreement);
  }
}

TEST(PartitionFinderTest, InputValidation) {
  Example1Fixture fx;
  PartitionFinder::Input input = fx.MakeInput({"bonus"});
  std::vector<double> short_y = {1.0};
  input.y_new = &short_y;
  EXPECT_TRUE(PartitionFinder::ClusterResiduals(input, fx.options)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace charles
