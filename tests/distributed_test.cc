/// \file
/// Distributed shard execution (ISSUE 4): planner geometry, ShardResult wire
/// round trips, coordinator merge exactness, worker-crash surfacing, and the
/// headline contract — 1/2/8-shard Coordinator runs bit-identical to the
/// unsharded engine on both workloads, for both backends.

#include <gtest/gtest.h>
#include <signal.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "distributed/coordinator.h"
#include "table/table_builder.h"
#include "distributed/in_process_backend.h"
#include "distributed/shard_planner.h"
#include "distributed/subprocess_backend.h"
#include "linalg/score_partials.h"
#include "workload/billionaires_gen.h"
#include "workload/employee_gen.h"

namespace charles {
namespace {

// --- Planner geometry -------------------------------------------------------

TEST(ShardPlannerTest, BoundariesAreBlockAlignedAndCoverAllRows) {
  ShardPlan plan = PlanShards(/*num_rows=*/1000, /*block_rows=*/64, 4);
  ASSERT_EQ(plan.num_shards(), 4);
  EXPECT_EQ(plan.num_blocks(), 16);
  int64_t next_row = 0;
  int64_t next_block = 0;
  for (const ShardRange& shard : plan.shards) {
    EXPECT_EQ(shard.row_begin, next_row);
    EXPECT_EQ(shard.block_begin, next_block);
    EXPECT_EQ(shard.row_begin, shard.block_begin * plan.block_rows);
    EXPECT_GT(shard.num_rows(), 0);
    next_row = shard.row_end;
    next_block = shard.block_end;
  }
  EXPECT_EQ(next_row, 1000);
  EXPECT_EQ(next_block, plan.num_blocks());
}

TEST(ShardPlannerTest, ShardCountClampsToBlockCount) {
  // 100 rows in 64-row blocks = 2 blocks; 8 requested shards collapse to 2.
  ShardPlan plan = PlanShards(100, 64, 8);
  EXPECT_EQ(plan.num_blocks(), 2);
  EXPECT_EQ(plan.num_shards(), 2);
  EXPECT_EQ(plan.shards[0].row_begin, 0);
  EXPECT_EQ(plan.shards[0].row_end, 64);
  EXPECT_EQ(plan.shards[1].row_end, 100);  // last block is short
}

TEST(ShardPlannerTest, EmptyDiffYieldsNoShards) {
  ShardPlan plan = PlanShards(0, 64, 4);
  EXPECT_EQ(plan.num_shards(), 0);
  EXPECT_EQ(plan.num_blocks(), 0);
}

TEST(ShardPlannerTest, PlansAreDeterministic) {
  ShardPlan a = PlanShards(12345, 256, 7);
  ShardPlan b = PlanShards(12345, 256, 7);
  EXPECT_EQ(a.ToString(), b.ToString());
}

// --- Wire round trips -------------------------------------------------------

/// Deterministic synthetic shard input: two feature columns, y vectors, and
/// a few leaves with distinct shapes (all rows, a stride, a prefix).
struct SyntheticInput {
  std::vector<std::string> shortlist;
  ColumnCache columns;
  std::vector<double> y_old;
  std::vector<double> y_new;
  std::vector<RowSet> leaf_storage;
  ShardInput input;
};

SyntheticInput MakeSyntheticInput(int64_t rows) {
  SyntheticInput s;
  s.shortlist = {"a", "b"};
  std::vector<double> a(static_cast<size_t>(rows)), b(static_cast<size_t>(rows));
  s.y_old.resize(static_cast<size_t>(rows));
  s.y_new.resize(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    size_t i = static_cast<size_t>(r);
    a[i] = 1000.0 + 3.0 * static_cast<double>(r);
    b[i] = 50.0 - 0.25 * static_cast<double>(r % 97);
    s.y_old[i] = 10.0 + 0.5 * a[i];
    s.y_new[i] = (r % 3 == 0) ? s.y_old[i] : 1.05 * s.y_old[i] + 2.0 * b[i];
  }
  // ColumnCache has no public inserter; build it from a throwaway table.
  Schema schema = Schema::Make({Field{"a", TypeKind::kDouble, false},
                                Field{"b", TypeKind::kDouble, false}})
                      .ValueOrDie();
  TableBuilder builder(schema);
  for (int64_t r = 0; r < rows; ++r) {
    size_t i = static_cast<size_t>(r);
    builder.AppendRow({Value(a[i]), Value(b[i])}).AbortIfNotOk();
  }
  Table table = builder.Finish().ValueOrDie();
  s.columns = ColumnCache::Build(table, s.shortlist).ValueOrDie();

  std::vector<int64_t> stride, prefix;
  for (int64_t r = 0; r < rows; r += 3) stride.push_back(r);
  for (int64_t r = 0; r < rows / 2; ++r) prefix.push_back(r);
  s.leaf_storage.push_back(RowSet::All(rows));
  s.leaf_storage.push_back(RowSet(std::move(stride)));
  s.leaf_storage.push_back(RowSet(std::move(prefix)));

  s.input.shortlist = &s.shortlist;
  s.input.columns = &s.columns;
  s.input.y_old = &s.y_old;
  s.input.y_new = &s.y_new;
  for (const RowSet& leaf : s.leaf_storage) s.input.leaves.push_back(&leaf);
  return s;
}

void ExpectBitIdenticalResults(const ShardResult& a, const ShardResult& b) {
  EXPECT_EQ(a.shard, b.shard);
  EXPECT_EQ(a.rows_scanned, b.rows_scanned);
  EXPECT_EQ(a.blocks_emitted, b.blocks_emitted);
  ASSERT_EQ(a.leaves.size(), b.leaves.size());
  for (size_t l = 0; l < a.leaves.size(); ++l) {
    EXPECT_EQ(a.leaves[l].leaf, b.leaves[l].leaf);
    EXPECT_EQ(std::memcmp(&a.leaves[l].max_abs_delta, &b.leaves[l].max_abs_delta,
                          sizeof(double)),
              0);
    ASSERT_EQ(a.leaves[l].blocks.size(), b.leaves[l].blocks.size());
    for (size_t i = 0; i < a.leaves[l].blocks.size(); ++i) {
      EXPECT_EQ(a.leaves[l].blocks[i].first, b.leaves[l].blocks[i].first);
      EXPECT_TRUE(
          a.leaves[l].blocks[i].second.BitIdenticalTo(b.leaves[l].blocks[i].second));
    }
  }
}

TEST(ShardWireTest, SufficientStatsRoundTripIsExact) {
  SyntheticInput s = MakeSyntheticInput(257);
  std::vector<const std::vector<double>*> cols;
  ASSERT_TRUE(s.columns.ResolveColumns(s.shortlist, &cols));
  SufficientStats stats =
      AccumulateRows(cols, s.y_new, s.leaf_storage[0].indices().data(), 257);
  std::string wire;
  stats.SerializeTo(&wire);
  const unsigned char* cursor = reinterpret_cast<const unsigned char*>(wire.data());
  const unsigned char* end = cursor + wire.size();
  SufficientStats back = SufficientStats::Deserialize(&cursor, end).ValueOrDie();
  EXPECT_EQ(cursor, end);
  EXPECT_TRUE(back.BitIdenticalTo(stats));
  EXPECT_EQ(back.n(), 257);
}

TEST(ShardWireTest, ShardResultRoundTripIsExact) {
  SyntheticInput s = MakeSyntheticInput(500);
  ShardPlan plan = PlanShards(500, 64, 3);
  for (int64_t shard = 0; shard < plan.num_shards(); ++shard) {
    ShardResult result = ExecuteShardKernel(s.input, plan, shard).ValueOrDie();
    std::string wire;
    result.SerializeTo(&wire);
    ShardResult back = ShardResult::Deserialize(wire.data(), wire.size()).ValueOrDie();
    ExpectBitIdenticalResults(result, back);
  }
}

TEST(ShardWireTest, TruncatedAndCorruptedBytesAreRejected) {
  SyntheticInput s = MakeSyntheticInput(200);
  ShardPlan plan = PlanShards(200, 64, 2);
  ShardResult result = ExecuteShardKernel(s.input, plan, 0).ValueOrDie();
  std::string wire;
  result.SerializeTo(&wire);
  EXPECT_TRUE(ShardResult::Deserialize(wire.data(), wire.size() / 2).status().IsIOError());
  EXPECT_TRUE(ShardResult::Deserialize(wire.data(), 2).status().IsIOError());
  std::string corrupted = wire;
  corrupted[0] = 'X';  // magic mismatch
  EXPECT_TRUE(ShardResult::Deserialize(corrupted.data(), corrupted.size())
                  .status()
                  .IsIOError());
  // A corrupt length field must fail with IOError before any allocation
  // sized from it (magic | shard | rows | blocks | elapsed = 36 bytes in).
  std::string huge_count = wire;
  int64_t absurd = int64_t{1} << 60;
  std::memcpy(&huge_count[36], &absurd, sizeof(absurd));
  EXPECT_TRUE(ShardResult::Deserialize(huge_count.data(), huge_count.size())
                  .status()
                  .IsIOError());
}

// --- Coordinator merge exactness -------------------------------------------

TEST(CoordinatorTest, MergedMomentsMatchUnshardedAccumulationBitForBit) {
  SyntheticInput s = MakeSyntheticInput(777);
  std::vector<const std::vector<double>*> cols;
  ASSERT_TRUE(s.columns.ResolveColumns(s.shortlist, &cols));
  InProcessBackend backend;
  for (int shards : {1, 2, 5, 8}) {
    ShardPlan plan = PlanShards(777, 64, shards);
    CoordinatorResult merged =
        Coordinator::Run(s.input, plan, &backend, /*pool=*/nullptr).ValueOrDie();
    ASSERT_EQ(merged.leaves.size(), s.leaf_storage.size());
    for (size_t l = 0; l < s.leaf_storage.size(); ++l) {
      SufficientStats direct =
          AccumulateRowBlocks(cols, s.y_new, s.leaf_storage[l].indices(), 64);
      EXPECT_TRUE(merged.leaves[l].stats.BitIdenticalTo(direct))
          << "leaf " << l << " at " << shards << " shards";
    }
  }
}

TEST(CoordinatorTest, SubprocessResultsMatchInProcessBitForBit) {
  SyntheticInput s = MakeSyntheticInput(400);
  ShardPlan plan = PlanShards(400, 64, 4);
  InProcessBackend in_process;
  SubprocessBackend subprocess;
  CoordinatorResult a =
      Coordinator::Run(s.input, plan, &in_process, nullptr).ValueOrDie();
  CoordinatorResult b =
      Coordinator::Run(s.input, plan, &subprocess, nullptr).ValueOrDie();
  ASSERT_EQ(a.leaves.size(), b.leaves.size());
  for (size_t l = 0; l < a.leaves.size(); ++l) {
    EXPECT_TRUE(a.leaves[l].stats.BitIdenticalTo(b.leaves[l].stats));
    EXPECT_EQ(std::memcmp(&a.leaves[l].max_abs_delta, &b.leaves[l].max_abs_delta,
                          sizeof(double)),
              0);
  }
  EXPECT_EQ(a.rows_scanned, b.rows_scanned);
}

TEST(CoordinatorTest, RangeAccumulationMatchesIndexedAccumulationBitForBit) {
  SyntheticInput s = MakeSyntheticInput(333);
  std::vector<const std::vector<double>*> cols;
  ASSERT_TRUE(s.columns.ResolveColumns(s.shortlist, &cols));
  // The engine's all-rows fast path (no index vector) must replay exactly
  // the canonical indexed fold the shards and leaf caches use.
  SufficientStats range = AccumulateRangeBlocks(cols, s.y_new, 333, 64);
  SufficientStats indexed =
      AccumulateRowBlocks(cols, s.y_new, RowSet::All(333).indices(), 64);
  EXPECT_TRUE(range.BitIdenticalTo(indexed));
}

TEST(CoordinatorTest, StopTokenCancelsBetweenShards) {
  SyntheticInput s = MakeSyntheticInput(600);
  ShardPlan plan = PlanShards(600, 64, 8);
  InProcessBackend backend;
  StopToken stop;
  stop.RequestStop();
  Status status =
      Coordinator::Run(s.input, plan, &backend, nullptr, &stop).status();
  EXPECT_TRUE(status.IsCancelled());
}

// --- Worker failure surfacing (satellite: no hang, a Status instead) --------

TEST(SubprocessBackendTest, WorkerKilledMidShardSurfacesAsStatus) {
  SyntheticInput s = MakeSyntheticInput(300);
  ShardPlan plan = PlanShards(300, 64, 3);
  SubprocessBackend backend([](int64_t shard) {
    if (shard == 1) raise(SIGKILL);  // die mid-shard, pipe closes unflushed
  });
  // Healthy shards still work...
  EXPECT_TRUE(backend.ExecuteShard(s.input, plan, 0).ok());
  // ...the killed one reports the signal instead of hanging.
  Status status = backend.ExecuteShard(s.input, plan, 1).status();
  ASSERT_TRUE(status.IsInternal()) << status.ToString();
  EXPECT_NE(status.message().find("signal"), std::string::npos) << status.ToString();
}

TEST(SubprocessBackendTest, NonzeroWorkerExitSurfacesAsStatus) {
  SyntheticInput s = MakeSyntheticInput(300);
  ShardPlan plan = PlanShards(300, 64, 2);
  SubprocessBackend backend([](int64_t shard) {
    if (shard == 0) ::_exit(7);
  });
  Status status = backend.ExecuteShard(s.input, plan, 0).status();
  ASSERT_TRUE(status.IsInternal()) << status.ToString();
  EXPECT_NE(status.message().find("status 7"), std::string::npos) << status.ToString();
}

TEST(SubprocessBackendTest, CoordinatorPropagatesWorkerCrash) {
  SyntheticInput s = MakeSyntheticInput(300);
  ShardPlan plan = PlanShards(300, 64, 3);
  SubprocessBackend backend([](int64_t shard) {
    if (shard == 2) raise(SIGKILL);
  });
  Status status = Coordinator::Run(s.input, plan, &backend, nullptr).status();
  EXPECT_TRUE(status.IsInternal()) << status.ToString();
}

// --- ShardTask protocol (ISSUE 5): tagged tasks, wire, exact merges ---------

ShardTask MakeMomentsTask(const ShardInput& input) {
  ShardTask task;
  task.kind = ShardTaskKind::kLeafMoments;
  for (size_t l = 0; l < input.leaves.size(); ++l) {
    task.leaves.push_back(static_cast<int64_t>(l));
  }
  return task;
}

ShardTask MakeSignalTask() {
  ShardTask task;
  task.kind = ShardTaskKind::kSignalStats;
  return task;
}

/// Two probes with distinct leaves/subsets: a one-feature model on the
/// all-rows leaf and a two-feature model on the stride leaf.
ShardTask MakeErrorTask() {
  ShardTask task;
  task.kind = ShardTaskKind::kErrorPartials;
  ErrorProbe p0;
  p0.leaf = 0;
  p0.features = {0};
  p0.intercept = 12.5;
  p0.coefficients = {1.05};
  task.probes.push_back(p0);
  ErrorProbe p1;
  p1.leaf = 1;
  p1.features = {0, 1};
  p1.intercept = -3.0;
  p1.coefficients = {0.5, 2.0};
  task.probes.push_back(p1);
  return task;
}

/// The same two probes as a score task: the worker additionally tallies
/// rows whose |ŷ − y_new| is within the shipped exactness band.
ShardTask MakeScoreTask() {
  ShardTask task = MakeErrorTask();
  task.kind = ShardTaskKind::kScorePartials;
  // Sized to the synthetic input's error decades (~4e2..2e3) so the band
  // genuinely splits the rows: some within, some out.
  task.score_tolerance = 1000.0;
  return task;
}

TEST(ShardTaskWireTest, TaskRoundTripIsExactForAllKinds) {
  SyntheticInput s = MakeSyntheticInput(100);
  for (const ShardTask& task : {MakeMomentsTask(s.input), MakeSignalTask(),
                                MakeErrorTask(), MakeScoreTask()}) {
    std::string wire;
    task.SerializeTo(&wire);
    ShardTask back = ShardTask::Deserialize(wire.data(), wire.size()).ValueOrDie();
    EXPECT_EQ(back.kind, task.kind);
    EXPECT_EQ(back.leaves, task.leaves);
    ASSERT_EQ(back.probes.size(), task.probes.size());
    for (size_t p = 0; p < task.probes.size(); ++p) {
      EXPECT_EQ(back.probes[p].leaf, task.probes[p].leaf);
      EXPECT_EQ(back.probes[p].features, task.probes[p].features);
      EXPECT_EQ(std::memcmp(&back.probes[p].intercept, &task.probes[p].intercept,
                            sizeof(double)),
                0);
      EXPECT_EQ(back.probes[p].coefficients, task.probes[p].coefficients);
    }
    EXPECT_EQ(std::memcmp(&back.score_tolerance, &task.score_tolerance,
                          sizeof(double)),
              0);
    // Truncation and a foreign magic must fail loudly.
    EXPECT_TRUE(ShardTask::Deserialize(wire.data(), wire.size() / 2)
                    .status()
                    .IsIOError());
    std::string corrupted = wire;
    corrupted[0] = 'X';
    EXPECT_TRUE(ShardTask::Deserialize(corrupted.data(), corrupted.size())
                    .status()
                    .IsIOError());
  }
}

TEST(ShardTaskWireTest, TaskResultRoundTripIsExactForAllKinds) {
  SyntheticInput s = MakeSyntheticInput(500);
  ShardPlan plan = PlanShards(500, 64, 3);
  for (const ShardTask& task : {MakeMomentsTask(s.input), MakeSignalTask(),
                                MakeErrorTask(), MakeScoreTask()}) {
    for (int64_t shard = 0; shard < plan.num_shards(); ++shard) {
      ShardTaskResult result =
          ExecuteShardTaskKernel(s.input, plan, shard, task).ValueOrDie();
      std::string wire;
      result.SerializeTo(&wire);
      ShardTaskResult back =
          ShardTaskResult::Deserialize(wire.data(), wire.size()).ValueOrDie();
      EXPECT_EQ(back.kind, result.kind);
      EXPECT_EQ(back.shard, result.shard);
      EXPECT_EQ(back.rows_scanned, result.rows_scanned);
      EXPECT_EQ(back.blocks_emitted, result.blocks_emitted);
      ASSERT_EQ(back.leaves.size(), result.leaves.size());
      for (size_t l = 0; l < result.leaves.size(); ++l) {
        EXPECT_EQ(back.leaves[l].leaf, result.leaves[l].leaf);
        ASSERT_EQ(back.leaves[l].blocks.size(), result.leaves[l].blocks.size());
        for (size_t b = 0; b < result.leaves[l].blocks.size(); ++b) {
          EXPECT_TRUE(back.leaves[l].blocks[b].second.BitIdenticalTo(
              result.leaves[l].blocks[b].second));
        }
      }
      ASSERT_EQ(back.signal_blocks.size(), result.signal_blocks.size());
      for (size_t b = 0; b < result.signal_blocks.size(); ++b) {
        EXPECT_EQ(back.signal_blocks[b].first, result.signal_blocks[b].first);
        EXPECT_TRUE(back.signal_blocks[b].second.BitIdenticalTo(
            result.signal_blocks[b].second));
      }
      EXPECT_EQ(std::memcmp(&back.signal_max_abs_delta,
                            &result.signal_max_abs_delta, sizeof(double)),
                0);
      EXPECT_EQ(back.signal_rows_changed, result.signal_rows_changed);
      ASSERT_EQ(back.probes.size(), result.probes.size());
      for (size_t p = 0; p < result.probes.size(); ++p) {
        EXPECT_EQ(back.probes[p].probe, result.probes[p].probe);
        ASSERT_EQ(back.probes[p].blocks.size(), result.probes[p].blocks.size());
        for (size_t b = 0; b < result.probes[p].blocks.size(); ++b) {
          EXPECT_EQ(back.probes[p].blocks[b].first,
                    result.probes[p].blocks[b].first);
          EXPECT_TRUE(back.probes[p].blocks[b].second.BitIdenticalTo(
              result.probes[p].blocks[b].second));
        }
      }
      ASSERT_EQ(back.score_probes.size(), result.score_probes.size());
      for (size_t p = 0; p < result.score_probes.size(); ++p) {
        EXPECT_EQ(back.score_probes[p].probe, result.score_probes[p].probe);
        ASSERT_EQ(back.score_probes[p].blocks.size(),
                  result.score_probes[p].blocks.size());
        for (size_t b = 0; b < result.score_probes[p].blocks.size(); ++b) {
          EXPECT_EQ(back.score_probes[p].blocks[b].first,
                    result.score_probes[p].blocks[b].first);
          EXPECT_TRUE(back.score_probes[p].blocks[b].second.BitIdenticalTo(
              result.score_probes[p].blocks[b].second));
        }
      }
      EXPECT_TRUE(ShardTaskResult::Deserialize(wire.data(), wire.size() / 2)
                      .status()
                      .IsIOError());
    }
  }
}

TEST(ShardTaskMergeTest, SignalStatsMergeMatchesCentralFoldBitForBit) {
  SyntheticInput s = MakeSyntheticInput(777);
  std::vector<const std::vector<double>*> cols;
  ASSERT_TRUE(s.columns.ResolveColumns(s.shortlist, &cols));
  SufficientStats central = AccumulateRangeBlocks(cols, s.y_new, 777, 64);
  InProcessBackend in_process;
  SubprocessBackend subprocess;
  for (int shards : {1, 2, 5, 8}) {
    ShardPlan plan = PlanShards(777, 64, shards);
    for (ShardBackend* backend :
         std::vector<ShardBackend*>{&in_process, &subprocess}) {
      CoordinatorTaskResult merged =
          Coordinator::RunTask(s.input, plan, backend, /*pool=*/nullptr,
                               MakeSignalTask())
              .ValueOrDie();
      EXPECT_TRUE(merged.signal_stats.BitIdenticalTo(central))
          << backend->name() << " at " << shards << " shards";
      EXPECT_EQ(merged.rows_scanned, 777);
      EXPECT_GT(merged.signal_rows_changed, 0);
    }
  }
}

TEST(ShardTaskMergeTest, ErrorPartialsMergeMatchesCentralFoldBitForBit) {
  SyntheticInput s = MakeSyntheticInput(641);
  ShardTask task = MakeErrorTask();
  // Central canonical fold of each probe, straight from the definition.
  std::vector<ErrorPartials> central;
  for (const ErrorProbe& probe : task.probes) {
    const RowSet& rows = s.leaf_storage[static_cast<size_t>(probe.leaf)];
    std::vector<double> y(static_cast<size_t>(rows.size()));
    std::vector<double> y_hat(static_cast<size_t>(rows.size()));
    for (int64_t r = 0; r < rows.size(); ++r) {
      size_t row = static_cast<size_t>(rows[r]);
      y[static_cast<size_t>(r)] = s.y_new[row];
      double prediction = probe.intercept;
      for (size_t f = 0; f < probe.features.size(); ++f) {
        const std::vector<double>& column =
            *s.columns.Find(s.shortlist[static_cast<size_t>(probe.features[f])]);
        prediction += probe.coefficients[f] * column[row];
      }
      y_hat[static_cast<size_t>(r)] = prediction;
    }
    central.push_back(AccumulateAbsDiffBlocks(y, y_hat, rows.indices(), 64));
  }
  InProcessBackend in_process;
  SubprocessBackend subprocess;
  for (int shards : {1, 3, 8}) {
    ShardPlan plan = PlanShards(641, 64, shards);
    for (ShardBackend* backend :
         std::vector<ShardBackend*>{&in_process, &subprocess}) {
      CoordinatorTaskResult merged =
          Coordinator::RunTask(s.input, plan, backend, nullptr, task).ValueOrDie();
      ASSERT_EQ(merged.probes.size(), task.probes.size());
      for (size_t p = 0; p < central.size(); ++p) {
        EXPECT_TRUE(merged.probes[p].partials.BitIdenticalTo(central[p]))
            << backend->name() << " probe " << p << " at " << shards
            << " shards";
      }
    }
  }
}

TEST(ShardTaskMergeTest, ScorePartialsMergeMatchesCentralFoldBitForBit) {
  SyntheticInput s = MakeSyntheticInput(641);
  ShardTask task = MakeScoreTask();
  // Central canonical fold of each probe, straight from the definition: the
  // same ŷ chain as the error fold plus the within-band tally.
  std::vector<ScorePartials> central;
  for (const ErrorProbe& probe : task.probes) {
    const RowSet& rows = s.leaf_storage[static_cast<size_t>(probe.leaf)];
    std::vector<double> y(static_cast<size_t>(rows.size()));
    std::vector<double> y_hat(static_cast<size_t>(rows.size()));
    for (int64_t r = 0; r < rows.size(); ++r) {
      size_t row = static_cast<size_t>(rows[r]);
      y[static_cast<size_t>(r)] = s.y_new[row];
      double prediction = probe.intercept;
      for (size_t f = 0; f < probe.features.size(); ++f) {
        const std::vector<double>& column =
            *s.columns.Find(s.shortlist[static_cast<size_t>(probe.features[f])]);
        prediction += probe.coefficients[f] * column[row];
      }
      y_hat[static_cast<size_t>(r)] = prediction;
    }
    central.push_back(AccumulateScoreDiffBlocks(y, y_hat, rows.indices(), 64,
                                                task.score_tolerance));
    EXPECT_EQ(central.back().n, rows.size());
  }
  // The band actually splits the rows on this input — a tolerance that
  // matches nothing (or everything) would let a broken tally pass.
  EXPECT_GT(central[0].exact_count, 0);
  EXPECT_LT(central[0].exact_count, central[0].n);
  InProcessBackend in_process;
  SubprocessBackend subprocess;
  for (int shards : {1, 3, 8}) {
    ShardPlan plan = PlanShards(641, 64, shards);
    for (ShardBackend* backend :
         std::vector<ShardBackend*>{&in_process, &subprocess}) {
      CoordinatorTaskResult merged =
          Coordinator::RunTask(s.input, plan, backend, nullptr, task).ValueOrDie();
      ASSERT_EQ(merged.score_probes.size(), task.probes.size());
      for (size_t p = 0; p < central.size(); ++p) {
        EXPECT_TRUE(merged.score_probes[p].partials.BitIdenticalTo(central[p]))
            << backend->name() << " probe " << p << " at " << shards
            << " shards";
      }
    }
  }
}

TEST(ShardTaskMergeTest, NegativeScoreToleranceIsRejected) {
  SyntheticInput s = MakeSyntheticInput(200);
  ShardPlan plan = PlanShards(200, 64, 2);
  ShardTask task = MakeScoreTask();
  task.score_tolerance = -0.5;  // a band below zero can never be intended
  EXPECT_TRUE(ExecuteShardTaskKernel(s.input, plan, 0, task)
                  .status()
                  .IsInvalidArgument());
}

TEST(ShardTaskMergeTest, LeafMomentsSubsetSweepsOnlyRequestedLeaves) {
  SyntheticInput s = MakeSyntheticInput(400);
  ShardPlan plan = PlanShards(400, 64, 4);
  std::vector<const std::vector<double>*> cols;
  ASSERT_TRUE(s.columns.ResolveColumns(s.shortlist, &cols));
  // Request only leaf 2 — the elision shape: cached leaves are simply left
  // out of the task.
  ShardTask task;
  task.kind = ShardTaskKind::kLeafMoments;
  task.leaves = {2};
  InProcessBackend backend;
  CoordinatorTaskResult merged =
      Coordinator::RunTask(s.input, plan, &backend, nullptr, task).ValueOrDie();
  ASSERT_EQ(merged.leaves.size(), 1u);
  SufficientStats direct =
      AccumulateRowBlocks(cols, s.y_new, s.leaf_storage[2].indices(), 64);
  EXPECT_TRUE(merged.leaves[0].stats.BitIdenticalTo(direct));
  // Only the requested leaf's rows were scanned.
  EXPECT_EQ(merged.rows_scanned, s.leaf_storage[2].size());
}

TEST(ShardTaskMergeTest, MalformedProbeSurfacesAsInvalidArgument) {
  SyntheticInput s = MakeSyntheticInput(200);
  ShardPlan plan = PlanShards(200, 64, 2);
  ShardTask task;
  task.kind = ShardTaskKind::kErrorPartials;
  ErrorProbe bad;
  bad.leaf = 99;  // out of range
  task.probes.push_back(bad);
  EXPECT_TRUE(ExecuteShardTaskKernel(s.input, plan, 0, task)
                  .status()
                  .IsInvalidArgument());
}

// --- The headline contract: shard parity on real workloads ------------------

/// Byte- and bit-level equality of two ranked runs (the parallel-engine
/// test's comparator, plus score bits via memcmp).
void ExpectIdenticalRuns(const SummaryList& expected, const SummaryList& actual) {
  ASSERT_EQ(expected.summaries.size(), actual.summaries.size());
  for (size_t i = 0; i < expected.summaries.size(); ++i) {
    const ChangeSummary& a = expected.summaries[i];
    const ChangeSummary& b = actual.summaries[i];
    EXPECT_EQ(a.Signature(), b.Signature()) << "rank " << i;
    double sa = a.scores().score, sb = b.scores().score;
    double aa = a.scores().accuracy, ab = b.scores().accuracy;
    EXPECT_EQ(std::memcmp(&sa, &sb, sizeof(double)), 0) << "rank " << i;
    EXPECT_EQ(std::memcmp(&aa, &ab, sizeof(double)), 0) << "rank " << i;
    EXPECT_EQ(a.ToString(), b.ToString()) << "rank " << i;
  }
  EXPECT_EQ(expected.labelings, actual.labelings);
  EXPECT_EQ(expected.partitions, actual.partitions);
  EXPECT_EQ(expected.candidates_evaluated, actual.candidates_evaluated);
  EXPECT_EQ(expected.candidates_deduped, actual.candidates_deduped);
}

struct Workload {
  Table source;
  Table target;
  CharlesOptions options;
};

Workload MakeEmployeeWorkload() {
  EmployeeGenOptions gen;
  gen.num_rows = 600;
  Workload w;
  w.source = GenerateEmployees(gen).ValueOrDie();
  w.target = MakeEmployeeBonusPolicy().Apply(w.source).ValueOrDie();
  w.options.target_attribute = "bonus";
  w.options.key_columns = {"emp_id"};
  // Small canonical blocks so 8 shards exist on 600 rows; the unsharded
  // baseline uses the same block size (results depend on it, sharding on
  // top of it must not).
  w.options.stats_block_rows = 64;
  w.options.num_threads = 2;
  return w;
}

Workload MakeBillionairesWorkload() {
  BillionairesGenOptions gen;
  gen.num_rows = 700;
  Workload w;
  w.source = GenerateBillionaires(gen).ValueOrDie();
  w.target = MakeMarketPolicy().Apply(w.source).ValueOrDie();
  w.options.target_attribute = "net_worth";
  w.options.key_columns = {"person_id"};
  w.options.stats_block_rows = 64;
  w.options.num_threads = 2;
  return w;
}

void RunShardParity(const Workload& w, ShardBackendKind backend) {
  SummaryList unsharded = SummarizeChanges(w.source, w.target, w.options).ValueOrDie();
  ASSERT_FALSE(unsharded.summaries.empty());
  EXPECT_EQ(unsharded.shards_used, 0);
  for (int shards : {1, 2, 8}) {
    CharlesOptions sharded_options = w.options;
    sharded_options.num_shards = shards;
    sharded_options.shard_backend = backend;
    SummaryList sharded =
        SummarizeChanges(w.source, w.target, sharded_options).ValueOrDie();
    EXPECT_EQ(sharded.shards_used, shards) << "requested " << shards;
    EXPECT_GT(sharded.shard_rows_scanned, 0);
    ExpectIdenticalRuns(unsharded, sharded);
  }
}

TEST(ShardParityTest, EmployeeInProcessBitIdenticalAt1_2_8Shards) {
  RunShardParity(MakeEmployeeWorkload(), ShardBackendKind::kInProcess);
}

TEST(ShardParityTest, EmployeeSubprocessBitIdenticalAt1_2_8Shards) {
  RunShardParity(MakeEmployeeWorkload(), ShardBackendKind::kSubprocess);
}

TEST(ShardParityTest, BillionairesInProcessBitIdenticalAt1_2_8Shards) {
  RunShardParity(MakeBillionairesWorkload(), ShardBackendKind::kInProcess);
}

TEST(ShardParityTest, BillionairesSubprocessBitIdenticalAt1_2_8Shards) {
  RunShardParity(MakeBillionairesWorkload(), ShardBackendKind::kSubprocess);
}

TEST(ShardParityTest, ShardedRunWorksWithEngineContext) {
  Workload w = MakeEmployeeWorkload();
  SummaryList unsharded = SummarizeChanges(w.source, w.target, w.options).ValueOrDie();
  EngineContextOptions context_options;
  context_options.num_threads = 2;
  EngineContext context(context_options);
  CharlesOptions sharded_options = w.options;
  sharded_options.num_shards = 4;
  SummaryList cold =
      SummarizeChanges(w.source, w.target, sharded_options, &context).ValueOrDie();
  SummaryList warm =
      SummarizeChanges(w.source, w.target, sharded_options, &context).ValueOrDie();
  ExpectIdenticalRuns(unsharded, cold);
  ExpectIdenticalRuns(unsharded, warm);
  EXPECT_EQ(context.runs_completed(), 2);
}

TEST(ShardParityTest, ShardingRequiresSufficientStats) {
  Workload w = MakeEmployeeWorkload();
  CharlesOptions options = w.options;
  options.num_shards = 2;
  options.use_sufficient_stats = false;
  EXPECT_TRUE(SummarizeChanges(w.source, w.target, options).status().IsInvalidArgument());
}

}  // namespace
}  // namespace charles
