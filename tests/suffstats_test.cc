#include "linalg/suffstats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "core/engine.h"
#include "linalg/error_partials.h"
#include "linalg/matrix.h"
#include "ml/linear_regression.h"
#include "workload/employee_gen.h"
#include "workload/policy.h"

namespace charles {
namespace {

/// A well-conditioned regression fixture with deliberately large feature
/// means (mean >> spread): the regime where naive uncentered normal
/// equations lose digits, so parity here exercises the shifted accumulation.
struct Fixture {
  Matrix x;
  std::vector<double> y;
  std::vector<std::string> names;
};

Fixture MakeWellConditioned(int64_t n, int64_t p, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> spread(-1.0, 1.0);
  Fixture f;
  f.x = Matrix(n, p);
  f.y.resize(static_cast<size_t>(n));
  std::vector<double> truth(static_cast<size_t>(p));
  for (int64_t c = 0; c < p; ++c) {
    truth[static_cast<size_t>(c)] = 0.5 + 0.25 * static_cast<double>(c);
    f.names.push_back("f" + std::to_string(c));
  }
  for (int64_t r = 0; r < n; ++r) {
    double target = 1000.0;  // intercept
    for (int64_t c = 0; c < p; ++c) {
      // Mean ~ 5000·(c+1), spread ~ 100: large-mean regime.
      double v = 5000.0 * static_cast<double>(c + 1) + 100.0 * spread(rng);
      f.x.At(r, c) = v;
      target += truth[static_cast<size_t>(c)] * v;
    }
    f.y[static_cast<size_t>(r)] = target + 0.01 * spread(rng);  // mild noise
  }
  return f;
}

SufficientStats AccumulateAll(const Fixture& f) {
  SufficientStats stats(f.x.cols());
  for (int64_t r = 0; r < f.x.rows(); ++r) {
    stats.Accumulate(f.x.RowPtr(r), f.y[static_cast<size_t>(r)]);
  }
  return stats;
}

TEST(SuffStatsParityTest, MatchesQrOnWellConditionedFixtures) {
  for (int64_t p : {1, 2, 3, 5}) {
    Fixture f = MakeWellConditioned(400, p, 7 + static_cast<uint64_t>(p));
    SufficientStats stats = AccumulateAll(f);

    LinearModel qr = LinearRegression::Fit(f.x, f.y, f.names).ValueOrDie();
    std::vector<int> all;
    for (int64_t c = 0; c < p; ++c) all.push_back(static_cast<int>(c));
    LinearModel fast =
        LinearRegression::FitFromStats(stats, all, f.names).ValueOrDie();

    ASSERT_EQ(fast.coefficients.size(), qr.coefficients.size()) << "p=" << p;
    for (int64_t c = 0; c < p; ++c) {
      EXPECT_NEAR(fast.coefficients[static_cast<size_t>(c)],
                  qr.coefficients[static_cast<size_t>(c)], 1e-9)
          << "p=" << p << " c=" << c;
    }
    EXPECT_NEAR(fast.intercept, qr.intercept,
                1e-9 * std::max(1.0, std::abs(qr.intercept)))
        << "p=" << p;
    EXPECT_NEAR(fast.r2, qr.r2, 1e-9) << "p=" << p;
    // SSE = Syy − βᵀSxy cancels when R² ≈ 1, so the moments-only rmse
    // carries a few more ULPs of Syy than the row-level one.
    EXPECT_NEAR(fast.rmse, qr.rmse, 1e-6 * std::max(1e-3, qr.rmse)) << "p=" << p;
  }
}

TEST(SuffStatsParityTest, SubsetSolvesMatchQrOnMaterializedSubsets) {
  // One accumulation over the full feature set answers every subset — the
  // engine's cross-T reuse. Each subset solve must match a QR fit on the
  // subset's own materialized matrix.
  const int64_t p = 4;
  Fixture f = MakeWellConditioned(300, p, 11);
  SufficientStats stats = AccumulateAll(f);

  const std::vector<std::vector<int>> subsets = {{0}, {2}, {1, 3}, {3, 0}, {0, 1, 2}};
  for (const std::vector<int>& subset : subsets) {
    Matrix sub(f.x.rows(), static_cast<int64_t>(subset.size()));
    std::vector<std::string> names;
    for (size_t c = 0; c < subset.size(); ++c) {
      names.push_back(f.names[static_cast<size_t>(subset[c])]);
      for (int64_t r = 0; r < f.x.rows(); ++r) {
        sub.At(r, static_cast<int64_t>(c)) = f.x.At(r, subset[c]);
      }
    }
    LinearModel qr = LinearRegression::Fit(sub, f.y, names).ValueOrDie();
    LinearModel fast = LinearRegression::FitFromStats(stats, subset, names).ValueOrDie();
    for (size_t c = 0; c < subset.size(); ++c) {
      EXPECT_NEAR(fast.coefficients[c], qr.coefficients[c], 1e-9);
    }
    EXPECT_NEAR(fast.intercept, qr.intercept, 1e-9);
    EXPECT_NEAR(fast.r2, qr.r2, 1e-9);
  }
}

TEST(SuffStatsParityTest, ProjectThenSolveEqualsSubsetSolve) {
  Fixture f = MakeWellConditioned(200, 4, 13);
  SufficientStats stats = AccumulateAll(f);
  const std::vector<int> subset = {1, 3};
  SufficientStats::Solution direct = stats.SolveOls(subset).ValueOrDie();
  SufficientStats::Solution projected = stats.Project(subset).SolveOls().ValueOrDie();
  // Project copies the very same moments the subset solve reads, so the two
  // answers are bit-identical, not merely close.
  EXPECT_EQ(direct.intercept, projected.intercept);
  ASSERT_EQ(direct.coefficients.size(), projected.coefficients.size());
  for (size_t c = 0; c < direct.coefficients.size(); ++c) {
    EXPECT_EQ(direct.coefficients[c], projected.coefficients[c]);
  }
  EXPECT_EQ(direct.r2, projected.r2);
  EXPECT_EQ(direct.rmse, projected.rmse);
}

TEST(SuffStatsParityTest, MergeOfDisjointChunksMatchesBulkAccumulation) {
  Fixture f = MakeWellConditioned(350, 3, 17);
  SufficientStats bulk = AccumulateAll(f);

  // Three chunks with three different shift points, merged in order.
  SufficientStats merged(3);
  for (int64_t begin : {0, 100, 220}) {
    int64_t end = begin == 0 ? 100 : (begin == 100 ? 220 : 350);
    SufficientStats chunk(3);
    for (int64_t r = begin; r < end; ++r) {
      chunk.Accumulate(f.x.RowPtr(r), f.y[static_cast<size_t>(r)]);
    }
    ASSERT_TRUE(merged.Merge(chunk).ok());
  }
  EXPECT_EQ(merged.n(), bulk.n());
  EXPECT_NEAR(merged.MeanY(), bulk.MeanY(), 1e-9 * std::abs(bulk.MeanY()));
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(merged.MeanX(i), bulk.MeanX(i), 1e-9 * std::abs(bulk.MeanX(i)));
    EXPECT_NEAR(merged.Sxy(i), bulk.Sxy(i), 1e-6 * std::abs(bulk.Sxy(i)) + 1e-6);
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(merged.Sxx(i, j), bulk.Sxx(i, j),
                  1e-6 * std::abs(bulk.Sxx(i, j)) + 1e-6);
    }
  }
  SufficientStats::Solution a = merged.SolveOls().ValueOrDie();
  SufficientStats::Solution b = bulk.SolveOls().ValueOrDie();
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(a.coefficients[c], b.coefficients[c], 1e-9);
  }
  EXPECT_NEAR(a.intercept, b.intercept, 1e-9 * std::abs(b.intercept));

  // Merging a feature-count mismatch must fail, not corrupt.
  SufficientStats wrong(2);
  EXPECT_FALSE(merged.Merge(wrong).ok());
}

TEST(SuffStatsParityTest, RankDeficientFixtureFailsOverToQrLadder) {
  // Two identical columns: the centered normal equations are singular. The
  // stats solve must refuse (that is the fallback trigger), while the
  // row-level ladder still answers (QR detects the deficiency and ridge
  // resolves it) — exactly what FitLeaf does on this failure.
  const int64_t n = 50;
  Matrix x(n, 2);
  std::vector<double> y(static_cast<size_t>(n));
  std::vector<std::string> names = {"a", "a_copy"};
  for (int64_t r = 0; r < n; ++r) {
    double v = 10.0 + static_cast<double>(r);
    x.At(r, 0) = v;
    x.At(r, 1) = v;
    y[static_cast<size_t>(r)] = 3.0 * v + 7.0;
  }
  SufficientStats stats(2);
  for (int64_t r = 0; r < n; ++r) stats.Accumulate(x.RowPtr(r), y[static_cast<size_t>(r)]);

  Result<LinearModel> fast = LinearRegression::FitFromStats(stats, {0, 1}, names);
  ASSERT_FALSE(fast.ok());
  EXPECT_EQ(fast.status().code(), StatusCode::kInvalidArgument);

  Result<LinearModel> ladder = LinearRegression::Fit(x, y, names);
  ASSERT_TRUE(ladder.ok());  // ridge fallback produces a finite model
  EXPECT_TRUE(std::isfinite(ladder->intercept));
}

TEST(SuffStatsParityTest, UnderdeterminedAndEmptySystems) {
  SufficientStats stats(3);
  EXPECT_FALSE(stats.SolveOls().ok());  // no rows

  double row[] = {1.0, 2.0, 3.0};
  stats.Accumulate(row, 5.0);
  // One row is a constant response: like LinearRegression::Fit, the solve
  // short-circuits to the mean instead of failing.
  SufficientStats::Solution single = stats.SolveOls().ValueOrDie();
  EXPECT_DOUBLE_EQ(single.intercept, 5.0);
  EXPECT_DOUBLE_EQ(single.coefficients[0], 0.0);

  // Two rows with distinct responses over three features: underdetermined.
  double row2[] = {2.0, 1.0, 4.0};
  stats.Accumulate(row2, 9.0);
  EXPECT_FALSE(stats.SolveOls().ok());  // n < p + 1

  // Intercept-only solve still works.
  SufficientStats::Solution only = stats.SolveOls(std::vector<int>{}).ValueOrDie();
  EXPECT_DOUBLE_EQ(only.intercept, 7.0);
}

TEST(SuffStatsParityTest, ConstantResponseShortCircuits) {
  SufficientStats stats(1);
  for (int64_t r = 0; r < 20; ++r) {
    double v = static_cast<double>(r);
    stats.Accumulate(&v, 4.25);
  }
  SufficientStats::Solution solution = stats.SolveOls().ValueOrDie();
  EXPECT_DOUBLE_EQ(solution.intercept, 4.25);
  EXPECT_DOUBLE_EQ(solution.coefficients[0], 0.0);
  EXPECT_DOUBLE_EQ(solution.r2, 1.0);
}

// ---------------------------------------------------------------------------
// Engine-level parity and determinism.
// ---------------------------------------------------------------------------

void ExpectIdenticalRuns(const SummaryList& expected, const SummaryList& actual) {
  ASSERT_EQ(expected.summaries.size(), actual.summaries.size());
  for (size_t i = 0; i < expected.summaries.size(); ++i) {
    EXPECT_EQ(expected.summaries[i].Signature(), actual.summaries[i].Signature());
    EXPECT_EQ(expected.summaries[i].scores().score, actual.summaries[i].scores().score);
    EXPECT_EQ(expected.summaries[i].ToString(), actual.summaries[i].ToString());
  }
  EXPECT_EQ(expected.labelings, actual.labelings);
  EXPECT_EQ(expected.partitions, actual.partitions);
  EXPECT_EQ(expected.candidates_evaluated, actual.candidates_evaluated);
}

struct EmployeeWorkload {
  Table source;
  Table target;
};

EmployeeWorkload MakeEmployeeWorkload(int64_t rows) {
  EmployeeGenOptions gen;
  gen.num_rows = rows;
  gen.num_decoy_numeric = 1;
  gen.num_decoy_categorical = 1;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
  return EmployeeWorkload{std::move(source), std::move(target)};
}

CharlesOptions EmployeeOptions() {
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"emp_id"};
  return options;
}

TEST(SuffStatsEngineTest, FastPathRecoversTheSameTopSummaryAsQr) {
  EmployeeWorkload workload = MakeEmployeeWorkload(400);
  CharlesOptions options = EmployeeOptions();
  options.num_threads = 1;

  options.use_sufficient_stats = true;
  SummaryList fast = SummarizeChanges(workload.source, workload.target, options)
                         .ValueOrDie();
  options.use_sufficient_stats = false;
  SummaryList qr = SummarizeChanges(workload.source, workload.target, options)
                       .ValueOrDie();

  // The two solvers agree to ~1e-9 per fit; after normality snapping and
  // score quantization the ranked output is semantically identical.
  ASSERT_FALSE(fast.summaries.empty());
  ASSERT_EQ(fast.summaries.size(), qr.summaries.size());
  EXPECT_EQ(fast.summaries[0].Signature(), qr.summaries[0].Signature());
  EXPECT_NEAR(fast.summaries[0].scores().score, qr.summaries[0].scores().score, 1e-7);
  EXPECT_NEAR(fast.summaries[0].scores().accuracy,
              qr.summaries[0].scores().accuracy, 1e-9);
}

TEST(SuffStatsEngineTest, ParallelBitIdenticalToSerialAt128Threads) {
  // The fast path's determinism contract: per-leaf moments are accumulated
  // in serial row order on whichever worker gets there first, so the ranked
  // output at 2 and 8 threads is bit-identical to 1 thread.
  EmployeeWorkload workload = MakeEmployeeWorkload(500);
  CharlesOptions options = EmployeeOptions();
  options.use_sufficient_stats = true;

  options.num_threads = 1;
  SummaryList serial =
      SummarizeChanges(workload.source, workload.target, options).ValueOrDie();
  EXPECT_GT(serial.leaf_fits_computed, 0);

  for (int threads : {2, 8}) {
    options.num_threads = threads;
    SummaryList parallel =
        SummarizeChanges(workload.source, workload.target, options).ValueOrDie();
    EXPECT_EQ(parallel.threads_used, threads);
    ExpectIdenticalRuns(serial, parallel);
  }
}

TEST(SuffStatsEngineTest, BoundedRunCacheKeepsOutputIdentical) {
  // A tiny leaf-fit cache bound forces evictions mid-run; a miss only ever
  // recomputes the identical fit, so the ranked output cannot change.
  EmployeeWorkload workload = MakeEmployeeWorkload(300);
  CharlesOptions options = EmployeeOptions();
  options.num_threads = 4;

  SummaryList unbounded =
      SummarizeChanges(workload.source, workload.target, options).ValueOrDie();
  EXPECT_EQ(unbounded.leaf_fit_evictions, 0);

  options.max_cache_entries = 8;
  SummaryList bounded =
      SummarizeChanges(workload.source, workload.target, options).ValueOrDie();
  ExpectIdenticalRuns(unbounded, bounded);
  EXPECT_GT(bounded.leaf_fit_evictions, 0);
}

// ---------------------------------------------------------------------------
// Canonical block-fold edges (ISSUE 7): empty ranges, exact block
// boundaries, and fold-order regressions for both currencies.
// ---------------------------------------------------------------------------

/// Deterministic columns with per-block magnitude contrast, so any change to
/// the fold's block order shows up in the folded bits.
struct BlockFoldFixture {
  std::vector<std::vector<double>> storage;
  std::vector<const std::vector<double>*> columns;
  std::vector<double> y;
  std::vector<int64_t> rows;
};

BlockFoldFixture MakeBlockFoldFixture(int64_t num_rows) {
  BlockFoldFixture f;
  std::vector<double> x(static_cast<size_t>(num_rows));
  f.y.resize(static_cast<size_t>(num_rows));
  for (int64_t r = 0; r < num_rows; ++r) {
    size_t i = static_cast<size_t>(r);
    // Magnitudes swing by ~1e16 between early and late blocks: reordered
    // merges hit different absorption points and cannot reproduce the bits.
    double scale = (r < num_rows / 3) ? 1e8 : (r < 2 * num_rows / 3 ? 1.0 : 1e-8);
    x[i] = scale * (1.0 + 0.37 * static_cast<double>(r % 13));
    f.y[i] = scale * (2.0 - 0.11 * static_cast<double>(r % 7));
    f.rows.push_back(r);
  }
  f.storage.push_back(std::move(x));
  f.columns.push_back(&f.storage[0]);
  return f;
}

TEST(SuffStatsBlockFoldTest, EmptyRangeYieldsFreshStats) {
  BlockFoldFixture f = MakeBlockFoldFixture(10);
  SufficientStats from_range = AccumulateRangeBlocks(f.columns, f.y, 0, 64);
  SufficientStats from_rows = AccumulateRowBlocks(f.columns, f.y, {}, 64);
  SufficientStats fresh(1);
  EXPECT_EQ(from_range.n(), 0);
  EXPECT_TRUE(from_range.BitIdenticalTo(fresh));
  EXPECT_TRUE(from_rows.BitIdenticalTo(fresh));
}

TEST(SuffStatsBlockFoldTest, RangeEndingExactlyOnBlockBoundary) {
  // 128 rows in 64-row blocks: two full blocks, no tail. The fold must be
  // exactly the two-block merge — and identical whether the last block is
  // full (128) or short (120 leaves a 56-row tail behind boundary 64).
  BlockFoldFixture f = MakeBlockFoldFixture(128);
  SufficientStats folded = AccumulateRangeBlocks(f.columns, f.y, 128, 64);
  std::vector<int64_t> first(f.rows.begin(), f.rows.begin() + 64);
  std::vector<int64_t> second(f.rows.begin() + 64, f.rows.end());
  SufficientStats manual(1);
  ASSERT_TRUE(manual.Merge(AccumulateRows(f.columns, f.y, first.data(), 64)).ok());
  ASSERT_TRUE(manual.Merge(AccumulateRows(f.columns, f.y, second.data(), 64)).ok());
  EXPECT_TRUE(folded.BitIdenticalTo(manual));
  EXPECT_EQ(folded.n(), 128);
}

TEST(SuffStatsBlockFoldTest, FoldOrderRegression) {
  // The canonical fold merges per-block partials in ascending block order.
  // This test pins that order twice over: the entry point must equal the
  // explicit ascending fold bit-for-bit, and a descending fold of the very
  // same partials must NOT — so anyone who reorders the canonical block
  // loop (or "optimizes" the merge order) trips this immediately.
  BlockFoldFixture f = MakeBlockFoldFixture(96);
  const int64_t block_rows = 16;
  SufficientStats canonical =
      AccumulateRowBlocks(f.columns, f.y, f.rows, block_rows);

  std::vector<SufficientStats> partials;
  ForEachRowBlock(f.rows.data(), static_cast<int64_t>(f.rows.size()),
                  block_rows,
                  [&](int64_t /*block*/, const int64_t* ptr, int64_t count) {
                    partials.push_back(AccumulateRows(f.columns, f.y, ptr, count));
                  });
  ASSERT_GE(partials.size(), 3u);

  SufficientStats ascending(1);
  for (const SufficientStats& partial : partials) {
    ASSERT_TRUE(ascending.Merge(partial).ok());
  }
  EXPECT_TRUE(canonical.BitIdenticalTo(ascending));

  SufficientStats descending(1);
  for (auto it = partials.rbegin(); it != partials.rend(); ++it) {
    ASSERT_TRUE(descending.Merge(*it).ok());
  }
  EXPECT_FALSE(canonical.BitIdenticalTo(descending))
      << "fixture failed to distinguish fold orders — strengthen it";
}

TEST(ErrorPartialsEdgeTest, EmptyRangeYieldsZeroPartials) {
  ErrorPartials diff = AccumulateAbsDiffBlocks({}, {}, {}, 64);
  EXPECT_EQ(diff.n, 0);
  EXPECT_EQ(diff.abs_error_sum, 0.0);
  EXPECT_EQ(diff.mae(), 0.0);
  ErrorPartials abs = AccumulateAbsBlocks({}, {}, 64);
  EXPECT_EQ(abs.n, 0);
  EXPECT_EQ(abs.abs_error_sum, 0.0);
}

TEST(ErrorPartialsEdgeTest, RangeEndingExactlyOnBlockBoundary) {
  // rows 0..127 in 64-row blocks: exactly two blocks, no tail — the fold is
  // the two block sums merged in order.
  std::vector<int64_t> rows;
  std::vector<double> a, b;
  for (int64_t r = 0; r < 128; ++r) {
    rows.push_back(r);
    a.push_back(1.0 + 0.5 * static_cast<double>(r));
    b.push_back(0.25 * static_cast<double>(r % 9));
  }
  ErrorPartials folded = AccumulateAbsDiffBlocks(a, b, rows, 64);
  EXPECT_EQ(folded.n, 128);
  ErrorPartials manual;
  for (int64_t base : {int64_t{0}, int64_t{64}}) {
    ErrorPartials block;
    for (int64_t i = base; i < base + 64; ++i) {
      block.Accumulate(a[static_cast<size_t>(i)], b[static_cast<size_t>(i)]);
    }
    manual.Merge(block);
  }
  EXPECT_TRUE(folded.BitIdenticalTo(manual));
}

TEST(ErrorPartialsEdgeTest, SingleRowBlocksMatchSerialSum) {
  // block_rows = 1 degenerates every block to one row; the left-to-right
  // merge then replays the plain serial sum exactly.
  std::vector<int64_t> rows = {0, 1, 2, 3, 4};
  std::vector<double> values = {3.0, -1.5, 0.25, -0.125, 7.0};
  ErrorPartials folded = AccumulateAbsBlocks(values, rows, 1);
  ErrorPartials serial;
  for (double v : values) serial.Accumulate(v, 0.0);
  EXPECT_TRUE(folded.BitIdenticalTo(serial));
}

TEST(ErrorPartialsEdgeTest, FoldOrderRegression) {
  // 1.0 then two half-ulps: folded ascending the half-ulps are absorbed
  // (round-to-even), descending they first combine into a representable ulp
  // — so the two orders differ by exactly one bit, and any reordering of
  // the canonical block loop trips here.
  const double half_ulp = 1.1102230246251565e-16;  // 2^-53
  std::vector<int64_t> rows = {0, 1, 2};
  std::vector<double> values = {1.0, half_ulp, half_ulp};
  ErrorPartials canonical = AccumulateAbsBlocks(values, rows, 1);
  EXPECT_EQ(canonical.abs_error_sum, 1.0);

  ErrorPartials reversed;
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    ErrorPartials block;
    block.Accumulate(*it, 0.0);
    reversed.Merge(block);
  }
  EXPECT_GT(reversed.abs_error_sum, 1.0);
  EXPECT_FALSE(canonical.BitIdenticalTo(reversed));
}

}  // namespace
}  // namespace charles
