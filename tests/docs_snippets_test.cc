/// \file
/// Compiles the code snippets of docs/api.md and docs/observability.md
/// verbatim and smoke-runs them on the Example-1 workload, so the
/// documentation cannot drift from the API. If you change a snippet here,
/// change the doc page too (and vice versa) — the docs CI job runs this
/// test.

#include <gtest/gtest.h>

#include "workload/example1.h"

// --- docs/api.md "Minimal usage" -------------------------------------------

#include "core/charles.h"

charles::Result<charles::SummaryList> Quickstart(
    const charles::Table& snapshot_2016, const charles::Table& snapshot_2017) {
  charles::CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  options.num_threads = 0;  // 0 = hardware concurrency, 1 = serial
  return charles::SummarizeChanges(snapshot_2016, snapshot_2017, options);
}

// --- docs/api.md "Selecting the kernel backend" ----------------------------

charles::Result<charles::SummaryList> PinnedKernelRun(
    const charles::Table& snapshot_2016, const charles::Table& snapshot_2017) {
  charles::CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  options.kernel_backend = "scalar";  // or "simd"; default "auto" = best available
  return charles::SummarizeChanges(snapshot_2016, snapshot_2017, options);
}

// --- docs/api.md "Batched block folds" --------------------------------------

charles::Result<charles::SummaryList> BatchedFoldRun(
    const charles::Table& snapshot_2016, const charles::Table& snapshot_2017) {
  charles::CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  options.batch_fold = "on";  // or "off"; default "auto" batches shared sweeps
  return charles::SummarizeChanges(snapshot_2016, snapshot_2017, options);
}

// --- docs/api.md "Serving / repeated queries" ------------------------------

class SummaryService {
 public:
  explicit SummaryService(int num_threads)
      : context_(charles::EngineContextOptions{num_threads, /*cache_shards=*/0}) {}

  charles::Result<charles::SummaryList> Serve(
      const charles::Table& source, const charles::Table& target,
      const charles::CharlesOptions& options) {
    charles::CharlesEngine engine(options, &context_);
    return engine.Find(source, target);  // warm after the first identical query
  }

 private:
  charles::EngineContext context_;  // pool + cache live as long as the service
};

// --- docs/api.md "Bounding the serving cache" ------------------------------

class BoundedSummaryService {
 public:
  BoundedSummaryService()
      : context_(charles::EngineContextOptions{
            /*num_threads=*/0, /*cache_shards=*/0,
            /*max_cache_entries=*/10000}) {}  // LRU bound on cached leaf fits

  charles::Result<charles::SummaryList> Serve(
      const charles::Table& source, const charles::Table& target,
      const charles::CharlesOptions& run_options) {
    charles::CharlesEngine engine(run_options, &context_);
    return engine.Find(source, target);  // cache stays warm and stays bounded
  }

  int64_t evictions() const { return context_.leaf_cache_evictions(); }

 private:
  charles::EngineContext context_;  // long-lived: the bound is its point
};

// --- docs/api.md "Streaming" -----------------------------------------------

#include <cstdio>
#include <future>

charles::Result<charles::SummaryList> StreamingSearch(
    const charles::Table& source, const charles::Table& target,
    const charles::CharlesOptions& options, charles::EngineContext* context) {
  charles::CharlesEngine engine(options, context);
  charles::SummaryStream stream([](const charles::SummaryStreamUpdate& update) {
    if (!update.provisional.empty()) {
      std::printf("[%lld/%lld] best so far: score %.4f\n",
                  static_cast<long long>(update.shards_completed),
                  static_cast<long long>(update.shards_total),
                  update.provisional.front().scores().score);
    }
  });
  std::future<charles::Result<charles::SummaryList>> future =
      engine.FindAsync(source, target, &stream);
  // ... render partial rankings while the sweep runs ...
  return future.get();  // deterministic final ranking
}

// --- docs/api.md "Cancellation" --------------------------------------------

charles::Result<charles::SummaryList> SearchUntilGoodEnough(
    const charles::Table& source, const charles::Table& target,
    const charles::CharlesOptions& options, charles::StopToken* stop) {
  charles::CharlesEngine engine(options);
  charles::SummaryStream stream(
      [stop](const charles::SummaryStreamUpdate& update) {
        // Stop reading once the leader clears the bar; the run then resolves
        // with Status::Cancelled and this stream's final update has
        // update.cancelled set, with the best ranking found so far.
        if (!update.provisional.empty() &&
            update.provisional.front().scores().score > 0.95) {
          stop->RequestStop();
        }
      });
  return engine.FindAsync(source, target, &stream, stop).get();
}

// --- docs/api.md "Distributed shard execution" ------------------------------

charles::Result<charles::SummaryList> ShardedSearch(
    const charles::Table& snapshot_2016, const charles::Table& snapshot_2017) {
  charles::CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  options.num_shards = 8;  // row-range shards; ranking identical at any count
  options.shard_backend = charles::ShardBackendKind::kInProcess;
  return charles::SummarizeChanges(snapshot_2016, snapshot_2017, options);
}

// --- docs/api.md "Remote workers" -------------------------------------------

#include <string>
#include <vector>

charles::Result<charles::SummaryList> RemoteSearch(
    const charles::Table& snapshot_2016, const charles::Table& snapshot_2017,
    const std::vector<std::string>& worker_endpoints) {
  charles::CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  options.num_shards = 8;
  options.shard_backend = charles::ShardBackendKind::kRemote;
  options.remote_workers = worker_endpoints;  // {"host:9400", ...}
  options.remote_max_task_retries = 2;  // reassign on worker loss
  return charles::SummarizeChanges(snapshot_2016, snapshot_2017, options);
}

// --- docs/observability.md "Tracing a run" ----------------------------------

#include "obs/trace.h"

charles::Result<std::string> TracedRun(const charles::Table& source,
                                       const charles::Table& target,
                                       charles::CharlesOptions options) {
  options.trace = true;  // default off: zero cost, zero allocations
  charles::Result<charles::SummaryList> result =
      charles::SummarizeChanges(source, target, options);
  if (!result.ok()) return result.status();
  // One Chrome trace_event document; open in about:tracing or Perfetto.
  return result->trace->ToChromeTraceJson();
}

// --- docs/observability.md "Metrics" ----------------------------------------

#include "obs/metrics.h"

std::pair<std::string, std::string> MetricsSnapshots() {
  charles::obs::MetricsRegistry& metrics =
      charles::obs::MetricsRegistry::Global();
  charles::obs::Histogram* latency = metrics.histogram("myapp.request_seconds");
  latency->Observe(0.012);
  double p99 = latency->P99();  // interpolated from the bucket counts
  (void)p99;
  return {metrics.TextSnapshot(), metrics.ToJson()};
}

// --- docs/observability.md "JSON diagnostics" -------------------------------

charles::Result<std::string> DiagnosticsJson(const charles::Table& source,
                                             const charles::Table& target,
                                             const charles::CharlesOptions& options) {
  charles::Result<charles::SummaryList> result =
      charles::SummarizeChanges(source, target, options);
  if (!result.ok()) return result.status();
  return result->ToJson();  // {"schema_version":1,"run_id":"…",…}
}

// --- docs/observability.md "Log correlation" --------------------------------

void LogQuietly() {
  charles::SetLogThreshold(charles::LogLevel::kWarning);
  CHARLES_VLOG(Info) << "suppressed: below the threshold";
  CHARLES_VLOG(Warning) << "emitted";
  charles::SetLogThreshold(charles::LogLevel::kInfo);
}

// --- smoke runs -------------------------------------------------------------

#include "distributed/worker_service.h"

namespace charles {
namespace {

TEST(DocsSnippetsTest, QuickstartRuns) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  SummaryList result = Quickstart(source, target).ValueOrDie();
  ASSERT_FALSE(result.summaries.empty());
  EXPECT_GT(result.summaries[0].scores().score, 0.0);
}

TEST(DocsSnippetsTest, PinnedKernelSnippetMatchesEveryBackend) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  SummaryList pinned = PinnedKernelRun(source, target).ValueOrDie();
  // Default batch_fold ("auto") stages blocks on this multi-leaf workload,
  // which kernel_used reports as a "+batch" suffix on the pinned kernel.
  EXPECT_EQ(pinned.kernel_used, "scalar+batch");
  // The documented promise: the backend knob never changes a bit of output.
  for (const char* backend : {"simd", "auto"}) {
    CharlesOptions options;
    options.target_attribute = "bonus";
    options.key_columns = {"name"};
    options.kernel_backend = backend;
    SummaryList run = SummarizeChanges(source, target, options).ValueOrDie();
    EXPECT_FALSE(run.kernel_used.empty());
    ASSERT_EQ(pinned.summaries.size(), run.summaries.size());
    for (size_t i = 0; i < pinned.summaries.size(); ++i) {
      EXPECT_EQ(pinned.summaries[i].ToString(), run.summaries[i].ToString());
    }
  }
}

TEST(DocsSnippetsTest, BatchedFoldSnippetMatchesEveryMode) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  SummaryList batched = BatchedFoldRun(source, target).ValueOrDie();
  EXPECT_GT(batched.batched_blocks_staged, 0);
  EXPECT_GT(batched.batch_leaves_per_block_max, 0);
  EXPECT_NE(batched.kernel_used.find("+batch"), std::string::npos);
  // The documented promise: the batching knob never changes a bit of output.
  for (const char* mode : {"off", "auto"}) {
    CharlesOptions options;
    options.target_attribute = "bonus";
    options.key_columns = {"name"};
    options.batch_fold = mode;
    SummaryList run = SummarizeChanges(source, target, options).ValueOrDie();
    ASSERT_EQ(batched.summaries.size(), run.summaries.size());
    for (size_t i = 0; i < batched.summaries.size(); ++i) {
      EXPECT_EQ(batched.summaries[i].ToString(), run.summaries[i].ToString());
    }
  }
}

TEST(DocsSnippetsTest, ServingSnippetWarmsAcrossQueries) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};

  SummaryService service(/*num_threads=*/2);
  SummaryList cold = service.Serve(source, target, options).ValueOrDie();
  SummaryList warm = service.Serve(source, target, options).ValueOrDie();
  EXPECT_GT(cold.leaf_fits_computed, 0);
  EXPECT_EQ(warm.leaf_fits_computed, 0);
  ASSERT_EQ(cold.summaries.size(), warm.summaries.size());
  for (size_t i = 0; i < cold.summaries.size(); ++i) {
    EXPECT_EQ(cold.summaries[i].ToString(), warm.summaries[i].ToString());
  }
}

TEST(DocsSnippetsTest, BoundedServiceSnippetWarmsUnderTheBound) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};

  BoundedSummaryService service;
  SummaryList cold = service.Serve(source, target, options).ValueOrDie();
  SummaryList warm = service.Serve(source, target, options).ValueOrDie();
  ASSERT_FALSE(cold.summaries.empty());
  // The workload fits comfortably under the 10k bound, so the second query
  // is served warm and nothing was evicted.
  EXPECT_EQ(warm.leaf_fits_computed, 0);
  EXPECT_EQ(service.evictions(), 0);
}

TEST(DocsSnippetsTest, CancellationSnippetResolvesEitherWay) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};

  // Whether the bar is cleared mid-run (Cancelled) or never (a full run)
  // depends on the workload; the snippet must handle both outcomes.
  StopToken stop;
  Result<SummaryList> result = SearchUntilGoodEnough(source, target, options, &stop);
  if (!result.ok()) {
    EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
    EXPECT_TRUE(stop.stop_requested());
  }
}

TEST(DocsSnippetsTest, ShardedSnippetMatchesUnsharded) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  SummaryList sharded = ShardedSearch(source, target).ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  SummaryList unsharded = SummarizeChanges(source, target, options).ValueOrDie();
  ASSERT_EQ(sharded.summaries.size(), unsharded.summaries.size());
  for (size_t i = 0; i < sharded.summaries.size(); ++i) {
    EXPECT_EQ(sharded.summaries[i].ToString(), unsharded.summaries[i].ToString());
  }
}

TEST(DocsSnippetsTest, RemoteSnippetMatchesUnsharded) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  // The snippet's fleet, in-process: two loopback charles_worker services.
  std::unique_ptr<LoopbackWorker> a = LoopbackWorker::Start().ValueOrDie();
  std::unique_ptr<LoopbackWorker> b = LoopbackWorker::Start().ValueOrDie();
  SummaryList remote =
      RemoteSearch(source, target, {a->endpoint(), b->endpoint()}).ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  SummaryList unsharded = SummarizeChanges(source, target, options).ValueOrDie();
  ASSERT_EQ(remote.summaries.size(), unsharded.summaries.size());
  for (size_t i = 0; i < remote.summaries.size(); ++i) {
    EXPECT_EQ(remote.summaries[i].ToString(), unsharded.summaries[i].ToString());
  }
  EXPECT_EQ(remote.remote_task_retries, 0);
}

TEST(DocsSnippetsTest, TracedRunSnippetExportsChromeJson) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  std::string json = TracedRun(source, target, options).ValueOrDie();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"phase 1 (signals)\""), std::string::npos);
  EXPECT_NE(json.find("\"phase 3 (fits)\""), std::string::npos);
}

TEST(DocsSnippetsTest, MetricsSnippetProducesBothSnapshots) {
  std::pair<std::string, std::string> snapshots = MetricsSnapshots();
  EXPECT_NE(snapshots.first.find("myapp.request_seconds"), std::string::npos);
  EXPECT_NE(snapshots.second.find("\"myapp.request_seconds\""),
            std::string::npos);
  EXPECT_NE(snapshots.second.find("\"histograms\""), std::string::npos);
}

TEST(DocsSnippetsTest, DiagnosticsSnippetEmitsVersionedSchema) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  std::string json = DiagnosticsJson(source, target, options).ValueOrDie();
  EXPECT_EQ(json.find("{\"schema_version\":1"), 0u);
  EXPECT_NE(json.find("\"run_id\":\""), std::string::npos);
  EXPECT_NE(json.find("\"elapsed\":"), std::string::npos);
}

TEST(DocsSnippetsTest, LogThresholdSnippetRestoresDefault) {
  LogQuietly();
  EXPECT_EQ(GetLogThreshold(), LogLevel::kInfo);
}

TEST(DocsSnippetsTest, StreamingSnippetResolvesWithFinalRanking) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};

  EngineContext context;
  SummaryList streamed =
      StreamingSearch(source, target, options, &context).ValueOrDie();
  options.num_threads = 1;
  SummaryList serial = SummarizeChanges(source, target, options).ValueOrDie();
  ASSERT_EQ(streamed.summaries.size(), serial.summaries.size());
  for (size_t i = 0; i < serial.summaries.size(); ++i) {
    EXPECT_EQ(streamed.summaries[i].Signature(), serial.summaries[i].Signature());
  }
}

}  // namespace
}  // namespace charles
