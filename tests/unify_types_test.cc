#include <gtest/gtest.h>

#include "diff/diff.h"
#include "table/table_builder.h"

namespace charles {
namespace {

Table MakeTyped(TypeKind value_type, const std::vector<double>& values) {
  Schema schema = Schema::Make({Field{"id", TypeKind::kInt64, false},
                                Field{"value", value_type, true}})
                      .ValueOrDie();
  TableBuilder builder(schema);
  for (size_t i = 0; i < values.size(); ++i) {
    Value v = value_type == TypeKind::kInt64
                  ? Value(static_cast<int64_t>(values[i]))
                  : Value(values[i]);
    CHARLES_CHECK_OK(builder.AppendRow({Value(static_cast<int64_t>(i)), v}));
  }
  return builder.Finish().ValueOrDie();
}

TEST(CastToTest, Int64ToDouble) {
  Column col(TypeKind::kInt64);
  ASSERT_TRUE(col.Append(Value(3)).ok());
  col.AppendNull();
  Column cast = col.CastTo(TypeKind::kDouble).ValueOrDie();
  EXPECT_EQ(cast.type(), TypeKind::kDouble);
  EXPECT_EQ(cast.GetValue(0), Value(3.0));
  EXPECT_TRUE(cast.IsNull(1));
}

TEST(CastToTest, IdentityCast) {
  Column col(TypeKind::kString);
  ASSERT_TRUE(col.Append(Value("x")).ok());
  Column cast = col.CastTo(TypeKind::kString).ValueOrDie();
  EXPECT_TRUE(cast.Equals(col));
}

TEST(CastToTest, UnsupportedCastsRejected) {
  Column col(TypeKind::kDouble);
  ASSERT_TRUE(col.Append(Value(1.5)).ok());
  EXPECT_TRUE(col.CastTo(TypeKind::kInt64).status().IsTypeError());
  Column str_col(TypeKind::kString);
  EXPECT_TRUE(str_col.CastTo(TypeKind::kDouble).status().IsTypeError());
}

TEST(UnifyNumericTypesTest, PromotesInt64SideToDouble) {
  Table int_side = MakeTyped(TypeKind::kInt64, {100, 200});
  Table dbl_side = MakeTyped(TypeKind::kDouble, {100.5, 200.5});
  auto [unified_source, unified_target] =
      UnifyNumericTypes(int_side, dbl_side).ValueOrDie();
  EXPECT_TRUE(unified_source.schema().Equals(unified_target.schema()));
  EXPECT_EQ(unified_source.schema().field(1).type, TypeKind::kDouble);
  EXPECT_EQ(unified_source.GetValue(0, 1), Value(100.0));

  // Promotion works in the other direction too.
  auto [s2, t2] = UnifyNumericTypes(dbl_side, int_side).ValueOrDie();
  EXPECT_TRUE(s2.schema().Equals(t2.schema()));
}

TEST(UnifyNumericTypesTest, MatchedSchemasPassThrough) {
  Table a = MakeTyped(TypeKind::kDouble, {1});
  Table b = MakeTyped(TypeKind::kDouble, {2});
  auto [s, t] = UnifyNumericTypes(a, b).ValueOrDie();
  EXPECT_TRUE(s.Equals(a));
  EXPECT_TRUE(t.Equals(b));
}

TEST(UnifyNumericTypesTest, EndToEndDiffAfterUnification) {
  Table int_side = MakeTyped(TypeKind::kInt64, {100, 200});
  Table dbl_side = MakeTyped(TypeKind::kDouble, {110.0, 200.0});
  auto [s, t] = UnifyNumericTypes(int_side, dbl_side).ValueOrDie();
  DiffOptions options;
  options.key_columns = {"id"};
  SnapshotDiff diff = SnapshotDiff::Compute(s, t, options).ValueOrDie();
  EXPECT_EQ((*diff.StatsFor("value"))->num_changed, 1);
}

TEST(UnifyNumericTypesTest, NonNumericMismatchLeftForDiffToReject) {
  Schema string_schema = Schema::Make({Field{"id", TypeKind::kInt64, false},
                                       Field{"value", TypeKind::kString, true}})
                             .ValueOrDie();
  TableBuilder builder(string_schema);
  CHARLES_CHECK_OK(builder.AppendRow({Value(0), Value("a")}));
  Table string_side = builder.Finish().ValueOrDie();
  Table dbl_side = MakeTyped(TypeKind::kDouble, {1.0});
  auto [s, t] = UnifyNumericTypes(string_side, dbl_side).ValueOrDie();
  DiffOptions options;
  options.key_columns = {"id"};
  EXPECT_TRUE(SnapshotDiff::Compute(s, t, options).status().IsInvalidArgument());
}

}  // namespace
}  // namespace charles
