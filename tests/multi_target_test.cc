#include "core/multi_target.h"

#include <gtest/gtest.h>

#include "workload/example1.h"
#include "workload/montgomery_gen.h"

namespace charles {
namespace {

TEST(MultiTargetTest, Example1FindsBonusAndExp) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  MultiTargetOptions options;
  options.base.key_columns = {"name"};
  MultiTargetReport report =
      SummarizeAllChangedAttributes(source, target, options).ValueOrDie();
  // exp changed for 9/9 rows, bonus for 7/9, salary for none.
  ASSERT_EQ(report.per_attribute.size(), 2u);
  EXPECT_EQ(report.per_attribute[0].attribute, "exp");
  EXPECT_NEAR(report.per_attribute[0].change_fraction, 1.0, 1e-12);
  EXPECT_EQ(report.per_attribute[1].attribute, "bonus");
  EXPECT_NEAR(report.per_attribute[1].change_fraction, 7.0 / 9.0, 1e-12);
  // The exp summary must be the trivial +1 shift.
  const ChangeSummary& exp_top = report.per_attribute[0].summaries.summaries[0];
  EXPECT_EQ(exp_top.num_cts(), 1);
  EXPECT_NEAR(exp_top.scores().accuracy, 1.0, 1e-9);
}

TEST(MultiTargetTest, MaxAttributesCaps) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  MultiTargetOptions options;
  options.base.key_columns = {"name"};
  options.max_attributes = 1;
  MultiTargetReport report =
      SummarizeAllChangedAttributes(source, target, options).ValueOrDie();
  ASSERT_EQ(report.per_attribute.size(), 1u);
  EXPECT_EQ(report.per_attribute[0].attribute, "exp");  // most-changed first
}

TEST(MultiTargetTest, UnchangedSnapshotYieldsEmptyReport) {
  Table source = MakeExample1Source().ValueOrDie();
  MultiTargetOptions options;
  options.base.key_columns = {"name"};
  MultiTargetReport report =
      SummarizeAllChangedAttributes(source, source, options).ValueOrDie();
  EXPECT_TRUE(report.per_attribute.empty());
}

TEST(MultiTargetTest, MontgomerySingleChangedAttribute) {
  MontgomeryGenOptions gen;
  gen.num_rows = 500;
  Table source = GenerateMontgomery2016(gen).ValueOrDie();
  Table target = GenerateMontgomery2017(source).ValueOrDie();
  MultiTargetOptions options;
  options.base.key_columns = {"employee_id"};
  MultiTargetReport report =
      SummarizeAllChangedAttributes(source, target, options).ValueOrDie();
  ASSERT_EQ(report.per_attribute.size(), 1u);
  EXPECT_EQ(report.per_attribute[0].attribute, "base_salary");
  std::string text = report.ToString();
  EXPECT_NE(text.find("base_salary"), std::string::npos);
  EXPECT_NE(text.find("100% of rows changed"), std::string::npos);
}

TEST(MultiTargetTest, MissingKeysRejected) {
  Table source = MakeExample1Source().ValueOrDie();
  MultiTargetOptions options;
  EXPECT_TRUE(SummarizeAllChangedAttributes(source, source, options)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace charles
