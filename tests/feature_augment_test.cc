#include "core/feature_augment.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "table/table_builder.h"
#include "workload/policy.h"

namespace charles {
namespace {

Table NumericTable(const std::vector<std::pair<double, double>>& rows) {
  Schema schema = Schema::Make({
                                   Field{"id", TypeKind::kInt64, false},
                                   Field{"a", TypeKind::kDouble, true},
                                   Field{"b", TypeKind::kDouble, true},
                               })
                      .ValueOrDie();
  TableBuilder builder(schema);
  int64_t id = 0;
  for (const auto& [a, b] : rows) {
    CHARLES_CHECK_OK(builder.AppendRow({Value(id++), Value(a), Value(b)}));
  }
  return builder.Finish().ValueOrDie();
}

TEST(AugmentTest, AddsLogAndSquareColumns) {
  Table t = NumericTable({{2.0, 3.0}, {4.0, 5.0}});
  AugmentOptions options;
  options.exclude = {"id"};
  Table augmented = AugmentWithNonlinearFeatures(t, options).ValueOrDie();
  EXPECT_TRUE(augmented.schema().HasField("log_a"));
  EXPECT_TRUE(augmented.schema().HasField("sq_a"));
  EXPECT_TRUE(augmented.schema().HasField("log_b"));
  EXPECT_TRUE(augmented.schema().HasField("sq_b"));
  EXPECT_DOUBLE_EQ((*augmented.GetValueByName(0, "log_a")).dbl(), std::log(2.0));
  EXPECT_DOUBLE_EQ((*augmented.GetValueByName(1, "sq_b")).dbl(), 25.0);
  // Original columns untouched.
  EXPECT_EQ(augmented.GetValue(0, 1), Value(2.0));
}

TEST(AugmentTest, NonPositiveColumnsSkipLog) {
  Table t = NumericTable({{-1.0, 3.0}, {4.0, 5.0}});
  AugmentOptions options;
  options.exclude = {"id"};
  Table augmented = AugmentWithNonlinearFeatures(t, options).ValueOrDie();
  EXPECT_FALSE(augmented.schema().HasField("log_a"));
  EXPECT_TRUE(augmented.schema().HasField("sq_a"));  // squares always fine
  EXPECT_TRUE(augmented.schema().HasField("log_b"));
}

TEST(AugmentTest, InteractionFeatures) {
  Table t = NumericTable({{2.0, 3.0}});
  AugmentOptions options;
  options.exclude = {"id"};
  options.log_features = false;
  options.square_features = false;
  options.interaction_features = true;
  Table augmented = AugmentWithNonlinearFeatures(t, options).ValueOrDie();
  EXPECT_TRUE(augmented.schema().HasField("a_x_b"));
  EXPECT_DOUBLE_EQ((*augmented.GetValueByName(0, "a_x_b")).dbl(), 6.0);
}

TEST(AugmentTest, ExplicitAttributeList) {
  Table t = NumericTable({{2.0, 3.0}});
  AugmentOptions options;
  options.attributes = {"a"};
  Table augmented = AugmentWithNonlinearFeatures(t, options).ValueOrDie();
  EXPECT_TRUE(augmented.schema().HasField("sq_a"));
  EXPECT_FALSE(augmented.schema().HasField("sq_b"));
  options.attributes = {"nope"};
  EXPECT_TRUE(AugmentWithNonlinearFeatures(t, options).status().IsNotFound());
}

TEST(AugmentTest, NullsPropagate) {
  Schema schema = Schema::Make({Field{"a", TypeKind::kDouble, true}}).ValueOrDie();
  TableBuilder builder(schema);
  CHARLES_CHECK_OK(builder.AppendRow({Value(2.0)}));
  CHARLES_CHECK_OK(builder.AppendRow({Value::Null()}));
  Table t = builder.Finish().ValueOrDie();
  Table augmented = AugmentWithNonlinearFeatures(t).ValueOrDie();
  EXPECT_TRUE((*augmented.GetValueByName(1, "sq_a")).is_null());
}

TEST(AugmentSnapshotsTest, SchemasStayEqual) {
  // `a` is positive in the source but not in the target: log_a must appear
  // on neither side.
  Table source = NumericTable({{2.0, 3.0}, {4.0, 5.0}});
  Table target = NumericTable({{-2.0, 3.3}, {4.0, 5.5}});
  AugmentOptions options;
  options.exclude = {"id"};
  auto [s, t] = AugmentSnapshots(source, target, options).ValueOrDie();
  EXPECT_TRUE(s.schema().Equals(t.schema()));
  EXPECT_FALSE(s.schema().HasField("log_a"));
  EXPECT_TRUE(s.schema().HasField("log_b"));
  EXPECT_TRUE(s.schema().HasField("sq_a"));
}

TEST(AugmentSnapshotsTest, RecoversQuadraticPolicyEndToEnd) {
  // Planted policy: new_b = 0.001·a² + 10 — linear in the augmented space,
  // invisible to the plain linear search.
  Schema schema = Schema::Make({
                                   Field{"id", TypeKind::kInt64, false},
                                   Field{"a", TypeKind::kDouble, true},
                                   Field{"b", TypeKind::kDouble, true},
                               })
                      .ValueOrDie();
  TableBuilder builder(schema);
  for (int64_t i = 0; i < 300; ++i) {
    double a = 10.0 + static_cast<double>(i % 60);
    CHARLES_CHECK_OK(builder.AppendRow({Value(i), Value(a), Value(100.0)}));
  }
  Table source = builder.Finish().ValueOrDie();
  Table target = source;
  int b_col = *source.schema().FieldIndex("b");
  for (int64_t i = 0; i < source.num_rows(); ++i) {
    double a = (*source.GetValueByName(i, "a")).dbl();
    CHARLES_CHECK_OK(target.SetValue(i, b_col, Value(0.001 * a * a + 10.0)));
  }

  AugmentOptions augment;
  augment.attributes = {"a"};
  augment.log_features = false;
  auto [aug_source, aug_target] = AugmentSnapshots(source, target, augment).ValueOrDie();

  CharlesOptions options;
  options.target_attribute = "b";
  options.key_columns = {"id"};
  options.transform_attributes = {"sq_a"};  // the augmented feature
  SummaryList result = SummarizeChanges(aug_source, aug_target, options).ValueOrDie();
  const ChangeSummary& top = result.summaries[0];
  EXPECT_GT(top.scores().accuracy, 0.999);
  ASSERT_EQ(top.num_cts(), 1);
  const LinearModel& model = top.cts()[0].transform.model();
  ASSERT_EQ(model.feature_names, (std::vector<std::string>{"sq_a"}));
  EXPECT_NEAR(model.coefficients[0], 0.001, 1e-6);
  EXPECT_NEAR(model.intercept, 10.0, 1e-3);
}

}  // namespace
}  // namespace charles
