#include "diff/diff.h"

#include <gtest/gtest.h>

#include "table/table_builder.h"
#include "workload/example1.h"

namespace charles {
namespace {

Schema SimpleSchema() {
  return Schema::Make({
                          Field{"id", TypeKind::kInt64, false},
                          Field{"group", TypeKind::kString, true},
                          Field{"value", TypeKind::kDouble, true},
                      })
      .ValueOrDie();
}

Table MakeSimple(const std::vector<std::tuple<int64_t, const char*, double>>& rows) {
  TableBuilder builder(SimpleSchema());
  for (const auto& [id, group, value] : rows) {
    CHARLES_CHECK_OK(builder.AppendRow({Value(id), Value(group), Value(value)}));
  }
  return builder.Finish().ValueOrDie();
}

DiffOptions KeyedOn(const std::string& key) {
  DiffOptions options;
  options.key_columns = {key};
  return options;
}

TEST(DiffTest, AlignsByKeyRegardlessOfRowOrder) {
  Table source = MakeSimple({{1, "a", 10}, {2, "b", 20}, {3, "c", 30}});
  Table target = MakeSimple({{3, "c", 33}, {1, "a", 10}, {2, "b", 22}});
  SnapshotDiff diff = SnapshotDiff::Compute(source, target, KeyedOn("id")).ValueOrDie();
  ASSERT_EQ(diff.num_pairs(), 3);
  // Pair order follows source rows; target rows found by key.
  EXPECT_EQ(diff.pairs()[0].source_row, 0);
  EXPECT_EQ(diff.pairs()[0].target_row, 1);
  EXPECT_EQ(diff.pairs()[2].source_row, 2);
  EXPECT_EQ(diff.pairs()[2].target_row, 0);
}

TEST(DiffTest, ColumnStatsCountChanges) {
  Table source = MakeSimple({{1, "a", 10}, {2, "b", 20}, {3, "c", 30}});
  Table target = MakeSimple({{1, "a", 10}, {2, "b", 25}, {3, "d", 33}});
  SnapshotDiff diff = SnapshotDiff::Compute(source, target, KeyedOn("id")).ValueOrDie();
  const ColumnChangeStats* value_stats = *diff.StatsFor("value");
  EXPECT_EQ(value_stats->num_changed, 2);
  EXPECT_NEAR(value_stats->change_fraction, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(value_stats->mean_delta, 4.0);  // (5 + 3) / 2
  EXPECT_DOUBLE_EQ(value_stats->min_delta, 3.0);
  EXPECT_DOUBLE_EQ(value_stats->max_delta, 5.0);
  const ColumnChangeStats* group_stats = *diff.StatsFor("group");
  EXPECT_EQ(group_stats->num_changed, 1);
  EXPECT_FALSE(group_stats->numeric);
  EXPECT_TRUE(diff.StatsFor("missing").status().IsNotFound());
}

TEST(DiffTest, ChangedMaskAndRows) {
  Table source = MakeSimple({{1, "a", 10}, {2, "b", 20}, {3, "c", 30}});
  Table target = MakeSimple({{1, "a", 11}, {2, "b", 20}, {3, "c", 31}});
  SnapshotDiff diff = SnapshotDiff::Compute(source, target, KeyedOn("id")).ValueOrDie();
  EXPECT_EQ(*diff.ChangedMask("value"), (std::vector<bool>{true, false, true}));
  EXPECT_EQ(*diff.ChangedRows("value"), RowSet({0, 2}));
}

TEST(DiffTest, NumericToleranceSuppressesNoise) {
  Table source = MakeSimple({{1, "a", 10}});
  Table target = MakeSimple({{1, "a", 10.0000001}});
  DiffOptions options = KeyedOn("id");
  options.numeric_tolerance = 1e-3;
  SnapshotDiff diff = SnapshotDiff::Compute(source, target, options).ValueOrDie();
  EXPECT_EQ((*diff.StatsFor("value"))->num_changed, 0);
}

TEST(DiffTest, AlignedVectorsAndDeltas) {
  Table source = MakeSimple({{1, "a", 10}, {2, "b", 20}});
  Table target = MakeSimple({{2, "b", 25}, {1, "a", 12}});
  SnapshotDiff diff = SnapshotDiff::Compute(source, target, KeyedOn("id")).ValueOrDie();
  EXPECT_EQ(*diff.SourceValues("value"), (std::vector<double>{10, 20}));
  EXPECT_EQ(*diff.TargetValues("value"), (std::vector<double>{12, 25}));
  EXPECT_EQ(*diff.Deltas("value"), (std::vector<double>{2, 5}));
}

TEST(DiffTest, SchemaMismatchRejected) {
  Table source = MakeSimple({{1, "a", 10}});
  Schema other = Schema::Make({Field{"id", TypeKind::kInt64, false}}).ValueOrDie();
  TableBuilder builder(other);
  CHARLES_CHECK_OK(builder.AppendRow({Value(1)}));
  Table target = builder.Finish().ValueOrDie();
  EXPECT_TRUE(
      SnapshotDiff::Compute(source, target, KeyedOn("id")).status().IsInvalidArgument());
}

TEST(DiffTest, MissingEntityRejectedByDefault) {
  Table source = MakeSimple({{1, "a", 10}, {2, "b", 20}});
  Table target = MakeSimple({{1, "a", 10}});
  EXPECT_TRUE(
      SnapshotDiff::Compute(source, target, KeyedOn("id")).status().IsInvalidArgument());
}

TEST(DiffTest, ExtraEntityRejectedByDefault) {
  Table source = MakeSimple({{1, "a", 10}});
  Table target = MakeSimple({{1, "a", 10}, {2, "b", 20}});
  EXPECT_TRUE(
      SnapshotDiff::Compute(source, target, KeyedOn("id")).status().IsInvalidArgument());
}

TEST(DiffTest, AllowInsertDeleteCountsThem) {
  Table source = MakeSimple({{1, "a", 10}, {2, "b", 20}});
  Table target = MakeSimple({{2, "b", 21}, {3, "c", 30}});
  DiffOptions options = KeyedOn("id");
  options.allow_insert_delete = true;
  SnapshotDiff diff = SnapshotDiff::Compute(source, target, options).ValueOrDie();
  EXPECT_EQ(diff.num_pairs(), 1);
  EXPECT_EQ(diff.deletions(), 1);
  EXPECT_EQ(diff.insertions(), 1);
  EXPECT_EQ(diff.pairs()[0].source_row, 1);
}

TEST(DiffTest, DuplicateKeysRejected) {
  Table source = MakeSimple({{1, "a", 10}, {1, "b", 20}});
  Table target = MakeSimple({{1, "a", 10}, {1, "b", 20}});
  EXPECT_TRUE(
      SnapshotDiff::Compute(source, target, KeyedOn("id")).status().IsAlreadyExists());
}

TEST(DiffTest, EmptyKeyColumnsRejected) {
  Table source = MakeSimple({{1, "a", 10}});
  DiffOptions options;
  EXPECT_TRUE(
      SnapshotDiff::Compute(source, source, options).status().IsInvalidArgument());
}

TEST(DiffTest, NullTransitionsCountAsChanges) {
  TableBuilder sb(SimpleSchema());
  CHARLES_CHECK_OK(sb.AppendRow({Value(1), Value("a"), Value(10.0)}));
  CHARLES_CHECK_OK(sb.AppendRow({Value(2), Value("b"), Value::Null()}));
  Table source = sb.Finish().ValueOrDie();
  TableBuilder tb(SimpleSchema());
  CHARLES_CHECK_OK(tb.AppendRow({Value(1), Value("a"), Value::Null()}));
  CHARLES_CHECK_OK(tb.AppendRow({Value(2), Value("b"), Value(5.0)}));
  Table target = tb.Finish().ValueOrDie();
  SnapshotDiff diff = SnapshotDiff::Compute(source, target, KeyedOn("id")).ValueOrDie();
  EXPECT_EQ((*diff.StatsFor("value"))->num_changed, 2);
}

TEST(DiffTest, Example1SummaryReportsBonusAndExp) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  DiffOptions options;
  options.key_columns = {"name"};
  SnapshotDiff diff = SnapshotDiff::Compute(source, target, options).ValueOrDie();
  EXPECT_EQ(diff.num_pairs(), 9);
  // bonus changed for 7 of 9 (Cathy and James unchanged); exp for all 9.
  EXPECT_EQ((*diff.StatsFor("bonus"))->num_changed, 7);
  EXPECT_EQ((*diff.StatsFor("exp"))->num_changed, 9);
  EXPECT_EQ((*diff.StatsFor("salary"))->num_changed, 0);
  std::string summary = diff.Summary();
  EXPECT_NE(summary.find("bonus"), std::string::npos);
  EXPECT_EQ(summary.find("salary"), std::string::npos);  // unchanged: not listed
}

}  // namespace
}  // namespace charles
