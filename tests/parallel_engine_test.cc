#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "workload/employee_gen.h"
#include "workload/example1.h"

namespace charles {
namespace {

/// Asserts that two engine runs produced bit-identical ranked output:
/// same summaries in the same order, with byte-equal renderings and
/// bit-equal scores, and the same search-space trajectory.
void ExpectIdenticalRuns(const SummaryList& serial, const SummaryList& parallel) {
  ASSERT_EQ(serial.summaries.size(), parallel.summaries.size());
  for (size_t i = 0; i < serial.summaries.size(); ++i) {
    const ChangeSummary& a = serial.summaries[i];
    const ChangeSummary& b = parallel.summaries[i];
    EXPECT_EQ(a.Signature(), b.Signature()) << "rank " << i;
    EXPECT_EQ(a.scores().score, b.scores().score) << "rank " << i;
    EXPECT_EQ(a.scores().accuracy, b.scores().accuracy) << "rank " << i;
    EXPECT_EQ(a.ToString(), b.ToString()) << "rank " << i;
  }
  // The search itself must have walked the same space, not just converged.
  EXPECT_EQ(serial.labelings, parallel.labelings);
  EXPECT_EQ(serial.partitions, parallel.partitions);
  EXPECT_EQ(serial.candidates_evaluated, parallel.candidates_evaluated);
  EXPECT_EQ(serial.candidates_deduped, parallel.candidates_deduped);
}

SummaryList RunWithThreads(const Table& source, const Table& target,
                           CharlesOptions options, int num_threads) {
  options.num_threads = num_threads;
  return SummarizeChanges(source, target, options).ValueOrDie();
}

TEST(ParallelEngineTest, Example1IdenticalAcrossThreadCounts) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  options.top_n = 25;
  SummaryList serial = RunWithThreads(source, target, options, 1);
  EXPECT_EQ(serial.threads_used, 1);
  for (int threads : {2, 4, 8}) {
    SummaryList parallel = RunWithThreads(source, target, options, threads);
    EXPECT_EQ(parallel.threads_used, threads);
    ExpectIdenticalRuns(serial, parallel);
  }
}

TEST(ParallelEngineTest, EmployeeWorkloadIdenticalSerialVsEightThreads) {
  EmployeeGenOptions gen;
  gen.num_rows = 600;
  gen.num_decoy_numeric = 1;
  gen.num_decoy_categorical = 1;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"emp_id"};
  SummaryList serial = RunWithThreads(source, target, options, 1);
  SummaryList parallel = RunWithThreads(source, target, options, 8);
  ExpectIdenticalRuns(serial, parallel);
  ASSERT_FALSE(parallel.summaries.empty());
  EXPECT_GT(parallel.summaries[0].scores().accuracy, 0.9);
}

TEST(ParallelEngineTest, DefaultThreadsMatchesExplicitSerial) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  // num_threads = 0 resolves to hardware concurrency; output must still be
  // identical to the serial run whatever that resolves to.
  SummaryList defaulted = RunWithThreads(source, target, options, 0);
  SummaryList serial = RunWithThreads(source, target, options, 1);
  EXPECT_GE(defaulted.threads_used, 1);
  ExpectIdenticalRuns(serial, defaulted);
}

TEST(ParallelEngineTest, ParallelRunReusesLeafFits) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  SummaryList parallel = RunWithThreads(source, target, options, 4);
  EXPECT_GT(parallel.leaf_fits_computed, 0);
  EXPECT_GT(parallel.leaf_fits_reused, 0);
  SummaryList serial = RunWithThreads(source, target, options, 1);
  // A worker count must never change how many distinct fits exist, only who
  // computes them; serial reuse comes purely from the per-T local cache.
  EXPECT_GT(serial.leaf_fits_reused, 0);
}

TEST(ParallelEngineTest, NegativeThreadCountRejected) {
  Table source = MakeExample1Source().ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  options.num_threads = -2;
  EXPECT_TRUE(SummarizeChanges(source, source, options).status().IsOutOfRange());
}

}  // namespace
}  // namespace charles
