/// \file
/// The engine's non-identity alignment path: snapshots whose entity sets
/// differ (insertions/deletions tolerated via allow_insert_delete) or whose
/// rows arrive in different orders.

#include <gtest/gtest.h>

#include "core/charles.h"
#include "workload/employee_gen.h"
#include "workload/policy.h"

namespace charles {
namespace {

CharlesOptions BonusOptions() {
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"emp_id"};
  return options;
}

/// Source with a planted policy applied, then rows dropped from each side.
struct ChurnedSnapshots {
  Table source;
  Table target;
  Table matched_source;  // the entities present in both
};

ChurnedSnapshots MakeChurned() {
  EmployeeGenOptions gen;
  gen.num_rows = 600;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table full_target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();

  // Drop the first 30 entities from the target ("deletions") and the last 30
  // from the source ("insertions" from the source's perspective are rows
  // present only in the target — simulate by dropping from source instead).
  std::vector<int64_t> target_keep;
  for (int64_t i = 30; i < full_target.num_rows(); ++i) target_keep.push_back(i);
  std::vector<int64_t> source_keep;
  for (int64_t i = 0; i < source.num_rows() - 30; ++i) source_keep.push_back(i);

  ChurnedSnapshots out{
      source.Take(RowSet(source_keep)).ValueOrDie(),
      full_target.Take(RowSet(target_keep)).ValueOrDie(),
      Table()};
  std::vector<int64_t> both;
  for (int64_t i = 30; i < source.num_rows() - 30; ++i) both.push_back(i);
  out.matched_source = source.Take(RowSet(both)).ValueOrDie();
  return out;
}

TEST(AlignmentTest, StrictModeRejectsChurn) {
  ChurnedSnapshots churned = MakeChurned();
  EXPECT_TRUE(SummarizeChanges(churned.source, churned.target, BonusOptions())
                  .status()
                  .IsInvalidArgument());
}

TEST(AlignmentTest, TolerantModeAnalyzesTheIntersection) {
  ChurnedSnapshots churned = MakeChurned();
  CharlesOptions options = BonusOptions();
  options.allow_insert_delete = true;
  SummaryList result =
      SummarizeChanges(churned.source, churned.target, options).ValueOrDie();
  ASSERT_FALSE(result.summaries.empty());
  const ChangeSummary& top = result.summaries[0];
  // The policy is exactly representable on the matched entities.
  EXPECT_GT(top.scores().accuracy, 0.999);
  RecoveryReport recovery =
      EvaluateRecovery(MakeEmployeeBonusPolicy(), top, churned.matched_source)
          .ValueOrDie();
  EXPECT_DOUBLE_EQ(recovery.rule_recall, 1.0);
}

TEST(AlignmentTest, TolerantSummariesApplyToTheMatchedView) {
  ChurnedSnapshots churned = MakeChurned();
  CharlesOptions options = BonusOptions();
  options.allow_insert_delete = true;
  SummaryList result =
      SummarizeChanges(churned.source, churned.target, options).ValueOrDie();
  const ChangeSummary& top = result.summaries[0];
  // CT row sets index the matched view, whose size is both-sides entities.
  int64_t covered = 0;
  for (const ConditionalTransform& ct : top.cts()) covered += ct.rows.size();
  EXPECT_EQ(covered, churned.matched_source.num_rows());
  // Conditions evaluate cleanly on the matched view.
  for (const ConditionalTransform& ct : top.cts()) {
    RowSet filtered = FilterRows(churned.matched_source, *ct.condition).ValueOrDie();
    EXPECT_EQ(filtered, ct.rows);
  }
}

TEST(AlignmentTest, ShuffledTargetAlignsByKey) {
  EmployeeGenOptions gen;
  gen.num_rows = 200;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
  // Rebuild the target in reverse row order.
  TableBuilder builder(target.schema());
  for (int64_t i = target.num_rows() - 1; i >= 0; --i) {
    CHARLES_CHECK_OK(builder.AppendRow(target.GetRow(i)));
  }
  Table reversed_target = builder.Finish().ValueOrDie();

  SummaryList forward = SummarizeChanges(source, target, BonusOptions()).ValueOrDie();
  SummaryList reversed =
      SummarizeChanges(source, reversed_target, BonusOptions()).ValueOrDie();
  EXPECT_EQ(forward.summaries[0].Signature(), reversed.summaries[0].Signature());
  EXPECT_DOUBLE_EQ(forward.summaries[0].scores().score,
                   reversed.summaries[0].scores().score);
}

TEST(LoggingTest, ThresholdControlsEmission) {
  LogLevel original = GetLogThreshold();
  SetLogThreshold(LogLevel::kError);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);
  // Below-threshold messages must not crash (output is suppressed).
  CHARLES_LOG(Info) << "suppressed message " << 42;
  CHARLES_LOG(Warning) << "also suppressed";
  SetLogThreshold(original);
}

TEST(LoggingTest, CheckMacrosPassOnTrueConditions) {
  CHARLES_CHECK(true) << "never shown";
  CHARLES_CHECK_EQ(1, 1);
  CHARLES_CHECK_LT(1, 2);
  CHARLES_CHECK_OK(Status::OK());
}

}  // namespace
}  // namespace charles
