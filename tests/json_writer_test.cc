/// \file
/// JsonWriter (ISSUE 9 satellite): escaping of every mandated character
/// class, comma/keying discipline across nested containers, and number
/// formatting — int64 extremes and round-trippable doubles, with NaN/Inf
/// mapped to null.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/json.h"

namespace charles {
namespace {

TEST(JsonWriterTest, EmptyContainers) {
  {
    JsonWriter w;
    w.BeginObject().EndObject();
    EXPECT_EQ(w.str(), "{}");
  }
  {
    JsonWriter w;
    w.BeginArray().EndArray();
    EXPECT_EQ(w.str(), "[]");
  }
}

TEST(JsonWriterTest, CommaAndKeyDiscipline) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a").Int(1);
  w.Key("b").BeginArray().Int(2).String("x").Bool(true).Null().EndArray();
  w.Key("c").BeginObject().Key("d").Double(0.5).EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[2,\"x\",true,null],\"c\":{\"d\":0.5}}");
}

TEST(JsonWriterTest, EscapesEveryMandatedCharacter) {
  JsonWriter w;
  w.BeginArray();
  w.String("quote\" backslash\\ tab\t newline\n return\r");
  w.String(std::string("nul\0bell\x07", 9));  // control chars -> \u00XX
  w.String("backspace\b formfeed\f");
  w.String("plain µ utf-8 ✓ passes through");
  w.EndArray();
  const std::string& out = w.str();
  EXPECT_NE(out.find("quote\\\" backslash\\\\ tab\\t newline\\n return\\r"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("nul\\u0000bell\\u0007"), std::string::npos) << out;
  EXPECT_NE(out.find("backspace\\b formfeed\\f"), std::string::npos) << out;
  EXPECT_NE(out.find("plain µ utf-8 ✓ passes through"), std::string::npos);
  // No raw control characters may survive in the document.
  for (char c : out) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(JsonWriterTest, IntegerExtremes) {
  JsonWriter w;
  w.BeginArray();
  w.Int(std::numeric_limits<int64_t>::max());
  w.Int(std::numeric_limits<int64_t>::min());
  w.Int(0);
  w.Uint(std::numeric_limits<uint64_t>::max());
  w.EndArray();
  EXPECT_EQ(w.str(),
            "[9223372036854775807,-9223372036854775808,0,"
            "18446744073709551615]");
}

TEST(JsonWriterTest, DoublesRoundTripThroughStrtod) {
  const double values[] = {0.0,     -0.0,   1.0,       0.1,
                           1.0 / 3, 2.5e-3, 1.23e300,  5e-324,
                           -17.25,  3600.0, 6.02214076e23};
  for (double value : values) {
    JsonWriter w;
    w.BeginArray().Double(value).EndArray();
    std::string body = w.str().substr(1, w.str().size() - 2);
    double parsed = std::strtod(body.c_str(), nullptr);
    EXPECT_EQ(parsed, value) << body;  // %.17g is round-trippable
  }
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(-std::numeric_limits<double>::infinity());
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,null]");
}

TEST(JsonWriterTest, EscapedKeysAndAppendEscaped) {
  JsonWriter w;
  w.BeginObject().Key("a\"b").Int(1).EndObject();
  EXPECT_EQ(w.str(), "{\"a\\\"b\":1}");

  std::string out;
  JsonWriter::AppendEscaped("x\ny", &out);
  EXPECT_EQ(out, "\"x\\ny\"");
}

TEST(JsonWriterTest, DeepNestingKeepsDiscipline) {
  JsonWriter w;
  w.BeginObject().Key("rows").BeginArray();
  for (int i = 0; i < 3; ++i) {
    w.BeginObject().Key("i").Int(i).Key("tags").BeginArray();
    w.String("a").String("b");
    w.EndArray().EndObject();
  }
  w.EndArray().EndObject();
  EXPECT_EQ(w.str(),
            "{\"rows\":[{\"i\":0,\"tags\":[\"a\",\"b\"]},"
            "{\"i\":1,\"tags\":[\"a\",\"b\"]},"
            "{\"i\":2,\"tags\":[\"a\",\"b\"]}]}");
}

}  // namespace
}  // namespace charles
