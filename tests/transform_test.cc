#include "core/transform.h"

#include <gtest/gtest.h>

#include "core/model_tree.h"
#include "workload/example1.h"

namespace charles {
namespace {

LinearTransform R1() {
  LinearModel model;
  model.feature_names = {"bonus"};
  model.coefficients = {1.05};
  model.intercept = 1000;
  return LinearTransform::Linear("bonus", std::move(model));
}

TEST(LinearTransformTest, ApplyComputesPredictions) {
  Table source = MakeExample1Source().ValueOrDie();
  // PhD rows: 0 (Anne, 23000), 1 (Bob, 25000), 8 (Frank, 21000).
  auto values = R1().Apply(source, RowSet({0, 1, 8})).ValueOrDie();
  EXPECT_DOUBLE_EQ(values[0], 25150);
  EXPECT_DOUBLE_EQ(values[1], 27250);
  EXPECT_DOUBLE_EQ(values[2], 23050);
}

TEST(LinearTransformTest, NoChangeReturnsOldValues) {
  Table source = MakeExample1Source().ValueOrDie();
  LinearTransform none = LinearTransform::NoChange("bonus");
  auto values = none.Apply(source, RowSet({4, 6})).ValueOrDie();
  EXPECT_DOUBLE_EQ(values[0], 11000);
  EXPECT_DOUBLE_EQ(values[1], 12000);
  EXPECT_TRUE(none.is_no_change());
  EXPECT_EQ(none.Complexity(), 0);
}

TEST(LinearTransformTest, MultiFeatureApply) {
  Table source = MakeExample1Source().ValueOrDie();
  LinearModel model;
  model.feature_names = {"salary", "bonus"};
  model.coefficients = {0.01, 0.5};
  model.intercept = 100;
  LinearTransform t = LinearTransform::Linear("bonus", std::move(model));
  auto values = t.Apply(source, RowSet({0})).ValueOrDie();
  EXPECT_DOUBLE_EQ(values[0], 0.01 * 230000 + 0.5 * 23000 + 100);
  EXPECT_EQ(t.Complexity(), 2);
}

TEST(LinearTransformTest, UnknownFeatureColumnFails) {
  Table source = MakeExample1Source().ValueOrDie();
  LinearModel model;
  model.feature_names = {"nope"};
  model.coefficients = {1.0};
  LinearTransform t = LinearTransform::Linear("bonus", std::move(model));
  EXPECT_TRUE(t.Apply(source, RowSet({0})).status().IsNotFound());
}

TEST(LinearTransformTest, ToStringUsesOldNewNaming) {
  EXPECT_EQ(R1().ToString(), "new_bonus = 1.05 × old_bonus + 1000");
  EXPECT_EQ(LinearTransform::NoChange("bonus").ToString(), "no change");
  // Non-target features keep their plain name.
  LinearModel model;
  model.feature_names = {"salary"};
  model.coefficients = {0.105};
  model.intercept = 1000;
  LinearTransform t = LinearTransform::Linear("bonus", std::move(model));
  EXPECT_EQ(t.ToString(), "new_bonus = 0.105 × salary + 1000");
}

TEST(LinearTransformTest, EqualsComparesConstants) {
  EXPECT_TRUE(R1().Equals(R1()));
  LinearModel other;
  other.feature_names = {"bonus"};
  other.coefficients = {1.06};
  other.intercept = 1000;
  EXPECT_FALSE(R1().Equals(LinearTransform::Linear("bonus", other)));
  EXPECT_FALSE(R1().Equals(LinearTransform::NoChange("bonus")));
  EXPECT_TRUE(
      LinearTransform::NoChange("bonus").Equals(LinearTransform::NoChange("bonus")));
}

TEST(ModelTreeTest, RenderSingleLeaf) {
  auto leaf = std::make_unique<ModelTreeNode>();
  leaf->is_leaf = true;
  leaf->transform = R1();
  leaf->coverage = 1.0;
  ModelTree tree(std::move(leaf));
  EXPECT_EQ(tree.num_leaves(), 1);
  EXPECT_EQ(tree.depth(), 0);
  std::string text = tree.Render();
  EXPECT_NE(text.find("new_bonus = 1.05 × old_bonus + 1000"), std::string::npos);
  EXPECT_NE(text.find("100%"), std::string::npos);
}

TEST(ModelTreeTest, RenderFigure2Shape) {
  // edu = 'PhD'? YES -> R1; NO -> None.
  auto yes = std::make_unique<ModelTreeNode>();
  yes->is_leaf = true;
  yes->transform = R1();
  yes->coverage = 1.0 / 3.0;
  auto no = std::make_unique<ModelTreeNode>();
  no->is_leaf = true;
  no->coverage = 2.0 / 3.0;  // no transform: renders as None
  auto root = std::make_unique<ModelTreeNode>();
  root->is_leaf = false;
  root->split = MakeColumnCompare("edu", CompareOp::kEq, Value("PhD"));
  root->yes = std::move(yes);
  root->no = std::move(no);
  ModelTree tree(std::move(root));
  EXPECT_EQ(tree.num_leaves(), 2);
  EXPECT_EQ(tree.depth(), 1);
  std::string text = tree.Render();
  EXPECT_NE(text.find("edu = 'PhD'?"), std::string::npos);
  EXPECT_NE(text.find("YES"), std::string::npos);
  EXPECT_NE(text.find("NO"), std::string::npos);
  EXPECT_NE(text.find("None"), std::string::npos);
  EXPECT_NE(text.find("33.3%"), std::string::npos);
}

}  // namespace
}  // namespace charles
