/// \file
/// Cooperative cancellation (ISSUE 4 satellite): a StopToken checked between
/// distributed shards and (partition, T) work items, surfaced as
/// Status::Cancelled and a final SummaryStreamUpdate with `cancelled` set.

#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "core/engine.h"
#include "workload/employee_gen.h"
#include "workload/example1.h"

namespace charles {
namespace {

CharlesOptions Example1CancelOptions() {
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  options.num_threads = 2;
  return options;
}

TEST(CancellationTest, PreStoppedTokenCancelsWithoutAStream) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesEngine engine(Example1CancelOptions());
  StopToken stop;
  stop.RequestStop();
  Status status = engine.Find(source, target, /*stream=*/nullptr, &stop).status();
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();
}

TEST(CancellationTest, StopTokenIsReusableAfterReset) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesEngine engine(Example1CancelOptions());
  StopToken stop;
  stop.RequestStop();
  EXPECT_TRUE(engine.Find(source, target, nullptr, &stop).status().IsCancelled());
  stop.Reset();
  EXPECT_TRUE(engine.Find(source, target, nullptr, &stop).ok());
}

TEST(CancellationTest, NullTokenChangesNothing) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesEngine engine(Example1CancelOptions());
  SummaryList baseline = engine.Find(source, target).ValueOrDie();
  SummaryList with_token = engine.Find(source, target, nullptr, nullptr).ValueOrDie();
  ASSERT_EQ(baseline.summaries.size(), with_token.summaries.size());
  for (size_t i = 0; i < baseline.summaries.size(); ++i) {
    EXPECT_EQ(baseline.summaries[i].ToString(), with_token.summaries[i].ToString());
  }
}

/// Collects every update a run emits; optionally requests a stop on the
/// first one — the "the reader has seen enough" pattern cancellation exists
/// for. Updates are serialized by SummaryStream::Emit, so the vector needs
/// no extra locking beyond the harness's own mutex.
struct CancellingObserver {
  explicit CancellingObserver(StopToken* stop) : stop(stop) {}

  SummaryStream::Callback AsCallback() {
    return [this](const SummaryStreamUpdate& update) {
      std::lock_guard<std::mutex> lock(mu);
      updates.push_back(update);
      if (stop != nullptr && updates.size() == 1) stop->RequestStop();
    };
  }

  StopToken* stop;
  std::mutex mu;
  std::vector<SummaryStreamUpdate> updates;
};

TEST(CancellationTest, StreamCallbackCancelMidPhase3EmitsCancelledFinalUpdate) {
  EmployeeGenOptions gen;
  gen.num_rows = 400;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"emp_id"};
  options.num_threads = 2;
  CharlesEngine engine(options);

  StopToken stop;
  CancellingObserver observer(&stop);
  SummaryStream stream(observer.AsCallback());
  Status status = engine.Find(source, target, &stream, &stop).status();
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();

  std::lock_guard<std::mutex> lock(observer.mu);
  ASSERT_GE(observer.updates.size(), 2u);  // the trigger + the cancelled final
  const SummaryStreamUpdate& final_update = observer.updates.back();
  EXPECT_TRUE(final_update.cancelled);
  // The run stopped early: the final update reports fewer completed work
  // items than the sweep holds (phase 3 of this workload has far more than
  // the couple of items that can slip in before the stop lands).
  EXPECT_LT(final_update.shards_completed, final_update.shards_total);
  for (size_t i = 0; i + 1 < observer.updates.size(); ++i) {
    EXPECT_FALSE(observer.updates[i].cancelled) << "update " << i;
  }
}

TEST(CancellationTest, FindAsyncResolvesCancelled) {
  EmployeeGenOptions gen;
  gen.num_rows = 400;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"emp_id"};
  options.num_threads = 2;
  CharlesEngine engine(options);

  StopToken stop;
  CancellingObserver observer(&stop);
  SummaryStream stream(observer.AsCallback());
  auto future = engine.FindAsync(source, target, &stream, &stop);
  Status status = future.get().status();
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();
}

TEST(CancellationTest, ShardedRunHonoursCancellation) {
  EmployeeGenOptions gen;
  gen.num_rows = 400;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"emp_id"};
  options.num_threads = 2;
  options.num_shards = 4;
  options.stats_block_rows = 64;
  CharlesEngine engine(options);
  StopToken stop;
  stop.RequestStop();
  Status status = engine.Find(source, target, nullptr, &stop).status();
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();
}

}  // namespace
}  // namespace charles
