#include "linalg/matrix.h"

#include <gtest/gtest.h>

namespace charles {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 1.5);
  m.At(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m.At(0, 1), -2.0);
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 6);
}

TEST(MatrixTest, IdentityAndMatMul) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix product = a.MatMul(Matrix::Identity(2));
  EXPECT_TRUE(product.EqualsApprox(a));
}

TEST(MatrixTest, MatMulKnownResult) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix expected = Matrix::FromRows({{19, 22}, {43, 50}});
  EXPECT_TRUE(a.MatMul(b).EqualsApprox(expected));
}

TEST(MatrixTest, Transpose) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = a.Transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t.At(2, 1), 6);
}

TEST(MatrixTest, MatVec) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  std::vector<double> result = a.MatVec({1.0, -1.0});
  EXPECT_DOUBLE_EQ(result[0], -1.0);
  EXPECT_DOUBLE_EQ(result[1], -1.0);
}

TEST(MatrixTest, GramEqualsTransposeTimesSelf) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}, {5, -6}});
  EXPECT_TRUE(a.Gram().EqualsApprox(a.Transpose().MatMul(a)));
}

TEST(MatrixTest, TransposeVecEqualsTransposeMatVec) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}, {5, -6}});
  std::vector<double> y = {1.0, 0.5, -2.0};
  std::vector<double> direct = a.TransposeVec(y);
  std::vector<double> via_transpose = a.Transpose().MatVec(y);
  ASSERT_EQ(direct.size(), via_transpose.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], via_transpose[i], 1e-12);
  }
}

TEST(MatrixTest, MaxAbs) {
  Matrix a = Matrix::FromRows({{1, -9}, {3, 4}});
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 9.0);
  EXPECT_DOUBLE_EQ(Matrix().MaxAbs(), 0.0);
}

TEST(MatrixTest, EqualsApproxTolerance) {
  Matrix a = Matrix::FromRows({{1.0}});
  Matrix b = Matrix::FromRows({{1.0 + 1e-12}});
  Matrix c = Matrix::FromRows({{1.1}});
  EXPECT_TRUE(a.EqualsApprox(b));
  EXPECT_FALSE(a.EqualsApprox(c));
  EXPECT_FALSE(a.EqualsApprox(Matrix(1, 2)));
}

}  // namespace
}  // namespace charles
