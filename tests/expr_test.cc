#include "expr/expr.h"

#include <gtest/gtest.h>

#include "table/table_builder.h"

namespace charles {
namespace {

Table EmployeeTable() {
  Schema schema = Schema::Make({
                                   Field{"name", TypeKind::kString, true},
                                   Field{"edu", TypeKind::kString, true},
                                   Field{"exp", TypeKind::kInt64, true},
                                   Field{"salary", TypeKind::kDouble, true},
                               })
                      .ValueOrDie();
  TableBuilder builder(schema);
  CHARLES_CHECK_OK(builder.AppendRow({Value("a"), Value("PhD"), Value(2), Value(230000.0)}));
  CHARLES_CHECK_OK(builder.AppendRow({Value("b"), Value("MS"), Value(5), Value(160000.0)}));
  CHARLES_CHECK_OK(builder.AppendRow({Value("c"), Value("MS"), Value(1), Value(130000.0)}));
  CHARLES_CHECK_OK(builder.AppendRow({Value("d"), Value("BS"), Value::Null(), Value(110000.0)}));
  return builder.Finish().ValueOrDie();
}

TEST(ExprTest, ColumnEqualityFilter) {
  Table t = EmployeeTable();
  ExprPtr e = MakeColumnCompare("edu", CompareOp::kEq, Value("MS"));
  RowSet rows = FilterRows(t, *e).ValueOrDie();
  EXPECT_EQ(rows.indices(), (std::vector<int64_t>{1, 2}));
}

TEST(ExprTest, NumericComparisonsCoerceIntDouble) {
  Table t = EmployeeTable();
  ExprPtr e = MakeColumnCompare("exp", CompareOp::kLt, Value(3.0));
  RowSet rows = FilterRows(t, *e).ValueOrDie();
  // Row 3 has NULL exp: excluded (comparisons with NULL are false).
  EXPECT_EQ(rows.indices(), (std::vector<int64_t>{0, 2}));
}

TEST(ExprTest, AndOrNotSemantics) {
  Table t = EmployeeTable();
  ExprPtr ms = MakeColumnCompare("edu", CompareOp::kEq, Value("MS"));
  ExprPtr junior = MakeColumnCompare("exp", CompareOp::kLt, Value(3));
  EXPECT_EQ(FilterRows(t, *MakeAnd({ms, junior}))->indices(), (std::vector<int64_t>{2}));
  EXPECT_EQ(FilterRows(t, *MakeOr({ms, junior}))->indices(),
            (std::vector<int64_t>{0, 1, 2}));
  EXPECT_EQ(FilterRows(t, *MakeNot(ms))->indices(), (std::vector<int64_t>{0, 3}));
}

TEST(ExprTest, TrueMatchesEverything) {
  Table t = EmployeeTable();
  EXPECT_EQ(FilterRows(t, *MakeTrue())->size(), t.num_rows());
}

TEST(ExprTest, InList) {
  Table t = EmployeeTable();
  ExprPtr e = MakeIn("edu", {Value("PhD"), Value("BS")});
  EXPECT_EQ(FilterRows(t, *e)->indices(), (std::vector<int64_t>{0, 3}));
}

TEST(ExprTest, NullNeverMatchesValueConditions) {
  Table t = EmployeeTable();
  // Row 3 (NULL exp) matches neither exp < 100 nor NOT(exp < 100)'s inner
  // comparison — NOT flips the false to true though.
  ExprPtr lt = MakeColumnCompare("exp", CompareOp::kLt, Value(100));
  EXPECT_FALSE(FilterRows(t, *lt)->Contains(3));
  EXPECT_TRUE(FilterRows(t, *MakeNot(lt))->Contains(3));
}

TEST(ExprTest, CrossTypeEqualityIsFalseNotError) {
  Table t = EmployeeTable();
  ExprPtr eq = MakeColumnCompare("edu", CompareOp::kEq, Value(5));
  EXPECT_TRUE(FilterRows(t, *eq)->empty());
  ExprPtr ne = MakeColumnCompare("edu", CompareOp::kNe, Value(5));
  EXPECT_EQ(FilterRows(t, *ne)->size(), 4);
}

TEST(ExprTest, CrossTypeOrderingIsTypeError) {
  Table t = EmployeeTable();
  ExprPtr lt = MakeColumnCompare("edu", CompareOp::kLt, Value(5));
  EXPECT_TRUE(FilterRows(t, *lt).status().IsTypeError());
}

TEST(ExprTest, ValidateCatchesUnknownColumns) {
  Table t = EmployeeTable();
  ExprPtr bad = MakeColumnCompare("nope", CompareOp::kEq, Value(1));
  EXPECT_TRUE(FilterRows(t, *bad).status().IsNotFound());
}

TEST(ExprTest, NonBooleanPredicateRejected) {
  Table t = EmployeeTable();
  ExprPtr col = MakeColumnRef("salary");
  EXPECT_TRUE(FilterRows(t, *col).status().IsTypeError());
}

TEST(ExprTest, ToStringRendering) {
  ExprPtr e = MakeAnd({MakeColumnCompare("edu", CompareOp::kEq, Value("MS")),
                       MakeColumnCompare("exp", CompareOp::kLt, Value(3))});
  EXPECT_EQ(e->ToString(), "edu = 'MS' AND exp < 3");
  ExprPtr o = MakeOr({MakeColumnCompare("a", CompareOp::kGe, Value(1)), e});
  EXPECT_EQ(o->ToString(), "a >= 1 OR (edu = 'MS' AND exp < 3)");
  EXPECT_EQ(MakeNot(e)->ToString(), "NOT (edu = 'MS' AND exp < 3)");
  EXPECT_EQ(MakeIn("x", {Value(1), Value(2)})->ToString(), "x IN (1, 2)");
  EXPECT_EQ(MakeTrue()->ToString(), "TRUE");
}

TEST(ExprTest, StringLiteralQuotingEscapesQuotes) {
  ExprPtr e = MakeColumnCompare("name", CompareOp::kEq, Value("O'Brien"));
  EXPECT_EQ(e->ToString(), "name = 'O''Brien'");
}

TEST(ExprTest, NumDescriptorsCountsLeaves) {
  ExprPtr a = MakeColumnCompare("x", CompareOp::kEq, Value(1));
  ExprPtr b = MakeColumnCompare("y", CompareOp::kLt, Value(2));
  EXPECT_EQ(MakeTrue()->NumDescriptors(), 0);
  EXPECT_EQ(a->NumDescriptors(), 1);
  EXPECT_EQ(MakeAnd({a, b})->NumDescriptors(), 2);
  EXPECT_EQ(MakeNot(MakeAnd({a, b}))->NumDescriptors(), 2);
  EXPECT_EQ(MakeIn("z", {Value(1), Value(2), Value(3)})->NumDescriptors(), 1);
}

TEST(ExprTest, AndFlattensAndDropsTrue) {
  ExprPtr a = MakeColumnCompare("x", CompareOp::kEq, Value(1));
  ExprPtr b = MakeColumnCompare("y", CompareOp::kEq, Value(2));
  ExprPtr c = MakeColumnCompare("z", CompareOp::kEq, Value(3));
  ExprPtr nested = MakeAnd({MakeAnd({a, b}), c, MakeTrue()});
  EXPECT_EQ(nested->ToString(), "x = 1 AND y = 2 AND z = 3");
  EXPECT_TRUE(MakeAnd({})->Equals(*MakeTrue()));
  EXPECT_TRUE(MakeAnd({a})->Equals(*a));
}

TEST(ExprTest, StructuralEquality) {
  ExprPtr a1 = MakeColumnCompare("x", CompareOp::kEq, Value(1));
  ExprPtr a2 = MakeColumnCompare("x", CompareOp::kEq, Value(1));
  ExprPtr b = MakeColumnCompare("x", CompareOp::kEq, Value(2));
  EXPECT_TRUE(a1->Equals(*a2));
  EXPECT_FALSE(a1->Equals(*b));
  EXPECT_TRUE(MakeAnd({a1, b})->Equals(*MakeAnd({a2, b})));
  EXPECT_FALSE(MakeAnd({a1, b})->Equals(*MakeOr({a1, b})));
}

TEST(ExprTest, CollectColumnsAndLiterals) {
  ExprPtr e = MakeAnd({MakeColumnCompare("edu", CompareOp::kEq, Value("MS")),
                       MakeColumnCompare("exp", CompareOp::kLt, Value(3))});
  std::vector<std::string> cols;
  e->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<std::string>{"edu", "exp"}));
  std::vector<Value> lits;
  e->CollectLiterals(&lits);
  ASSERT_EQ(lits.size(), 2u);
  EXPECT_EQ(lits[0], Value("MS"));
  EXPECT_EQ(lits[1], Value(3));
}

}  // namespace
}  // namespace charles
