#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "csv/csv_reader.h"
#include "csv/csv_writer.h"
#include "table/table_builder.h"

namespace charles {
namespace {

TEST(CsvReaderTest, BasicParseWithTypeInference) {
  Table t = CsvReader::ReadString("id,name,score\n1,ann,1.5\n2,bob,2.5\n").ValueOrDie();
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.schema().field(0).type, TypeKind::kInt64);
  EXPECT_EQ(t.schema().field(1).type, TypeKind::kString);
  EXPECT_EQ(t.schema().field(2).type, TypeKind::kDouble);
  EXPECT_EQ(t.GetValue(1, 1), Value("bob"));
  EXPECT_EQ(t.GetValue(0, 2), Value(1.5));
}

TEST(CsvReaderTest, IntColumnWithDecimalBecomesDouble) {
  Table t = CsvReader::ReadString("x\n1\n2.5\n3\n").ValueOrDie();
  EXPECT_EQ(t.schema().field(0).type, TypeKind::kDouble);
  EXPECT_EQ(t.GetValue(0, 0), Value(1.0));
}

TEST(CsvReaderTest, BoolInference) {
  Table t = CsvReader::ReadString("flag\ntrue\nfalse\ntrue\n").ValueOrDie();
  EXPECT_EQ(t.schema().field(0).type, TypeKind::kBool);
  EXPECT_EQ(t.GetValue(0, 0), Value(true));
}

TEST(CsvReaderTest, NullTokens) {
  Table t = CsvReader::ReadString("x,y\n1,a\nNULL,NA\n3,c\n").ValueOrDie();
  EXPECT_EQ(t.schema().field(0).type, TypeKind::kInt64);
  EXPECT_TRUE(t.GetValue(1, 0).is_null());
  EXPECT_TRUE(t.GetValue(1, 1).is_null());
}

TEST(CsvReaderTest, QuotedFieldsWithDelimitersAndNewlines) {
  Table t =
      CsvReader::ReadString("a,b\n\"hello, world\",\"line1\nline2\"\n").ValueOrDie();
  EXPECT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.GetValue(0, 0), Value("hello, world"));
  EXPECT_EQ(t.GetValue(0, 1), Value("line1\nline2"));
}

TEST(CsvReaderTest, EscapedQuotes) {
  Table t = CsvReader::ReadString("a\n\"she said \"\"hi\"\"\"\n").ValueOrDie();
  EXPECT_EQ(t.GetValue(0, 0), Value("she said \"hi\""));
}

TEST(CsvReaderTest, CrLfLineEndings) {
  Table t = CsvReader::ReadString("a,b\r\n1,2\r\n3,4\r\n").ValueOrDie();
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.GetValue(1, 1), Value(4));
}

TEST(CsvReaderTest, RaggedRowsRejected) {
  auto result = CsvReader::ReadString("a,b\n1,2\n3\n");
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(CsvReaderTest, UnterminatedQuoteRejected) {
  EXPECT_TRUE(CsvReader::ReadString("a\n\"oops\n").status().IsInvalidArgument());
}

TEST(CsvReaderTest, EmptyInputRejected) {
  EXPECT_TRUE(CsvReader::ReadString("").status().IsInvalidArgument());
}

TEST(CsvReaderTest, NoHeaderGeneratesNames) {
  CsvReadOptions options;
  options.has_header = false;
  Table t = CsvReader::ReadString("1,x\n2,y\n", options).ValueOrDie();
  EXPECT_EQ(t.schema().field(0).name, "f0");
  EXPECT_EQ(t.schema().field(1).name, "f1");
  EXPECT_EQ(t.num_rows(), 2);
}

TEST(CsvReaderTest, InferenceOffMakesEverythingString) {
  CsvReadOptions options;
  options.infer_types = false;
  Table t = CsvReader::ReadString("a\n42\n", options).ValueOrDie();
  EXPECT_EQ(t.schema().field(0).type, TypeKind::kString);
  EXPECT_EQ(t.GetValue(0, 0), Value("42"));
}

TEST(CsvReaderTest, CustomDelimiter) {
  CsvReadOptions options;
  options.delimiter = ';';
  Table t = CsvReader::ReadString("a;b\n1;2\n", options).ValueOrDie();
  EXPECT_EQ(t.GetValue(0, 1), Value(2));
}

TEST(CsvReaderTest, CellTrimming) {
  Table t = CsvReader::ReadString("a,b\n  1 ,  spaced text \n").ValueOrDie();
  EXPECT_EQ(t.GetValue(0, 0), Value(1));
  EXPECT_EQ(t.GetValue(0, 1), Value("spaced text"));
}

TEST(CsvWriterTest, QuotesSpecialCells) {
  Schema schema = Schema::Make({Field{"a", TypeKind::kString, true}}).ValueOrDie();
  TableBuilder builder(schema);
  CHARLES_CHECK_OK(builder.AppendRow({Value("x,y")}));
  CHARLES_CHECK_OK(builder.AppendRow({Value("say \"hi\"")}));
  Table t = builder.Finish().ValueOrDie();
  std::string csv = CsvWriter::WriteString(t);
  EXPECT_EQ(csv, "a\n\"x,y\"\n\"say \"\"hi\"\"\"\n");
}

TEST(CsvRoundTripTest, TypedTableSurvives) {
  Schema schema = Schema::Make({
                                   Field{"i", TypeKind::kInt64, true},
                                   Field{"d", TypeKind::kDouble, true},
                                   Field{"s", TypeKind::kString, true},
                               })
                      .ValueOrDie();
  TableBuilder builder(schema);
  CHARLES_CHECK_OK(builder.AppendRow({Value(1), Value(1.25), Value("plain")}));
  CHARLES_CHECK_OK(builder.AppendRow({Value(-7), Value(-0.5), Value("with,comma")}));
  CHARLES_CHECK_OK(builder.AppendRow({Value::Null(), Value(3.0), Value("q\"q")}));
  Table original = builder.Finish().ValueOrDie();

  std::string csv = CsvWriter::WriteString(original);
  Table reread = CsvReader::ReadString(csv).ValueOrDie();
  ASSERT_TRUE(reread.schema().Equals(original.schema()))
      << reread.schema().ToString();
  EXPECT_TRUE(reread.Equals(original));
}

TEST(CsvFileTest, WriteAndReadBack) {
  Schema schema = Schema::Make({Field{"x", TypeKind::kInt64, true}}).ValueOrDie();
  TableBuilder builder(schema);
  CHARLES_CHECK_OK(builder.AppendRow({Value(5)}));
  Table t = builder.Finish().ValueOrDie();
  std::string path = ::testing::TempDir() + "/charles_csv_test.csv";
  ASSERT_TRUE(CsvWriter::WriteFile(t, path).ok());
  Table reread = CsvReader::ReadFile(path).ValueOrDie();
  EXPECT_TRUE(reread.Equals(t));
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIOError) {
  EXPECT_TRUE(CsvReader::ReadFile("/no/such/file.csv").status().IsIOError());
}

}  // namespace
}  // namespace charles
