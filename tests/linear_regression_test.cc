#include "ml/linear_regression.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace charles {
namespace {

TEST(LinearRegressionTest, RecoversExactLine) {
  // y = 1.05 x + 1000 — the Example-1 R1 rule.
  Matrix x = Matrix::FromRows({{23000}, {25000}, {21000}});
  std::vector<double> y = {25150, 27250, 23050};
  LinearModel model = LinearRegression::Fit(x, y, {"bonus"}).ValueOrDie();
  EXPECT_NEAR(model.coefficients[0], 1.05, 1e-9);
  EXPECT_NEAR(model.intercept, 1000.0, 1e-5);
  EXPECT_NEAR(model.r2, 1.0, 1e-12);
  EXPECT_NEAR(model.mae, 0.0, 1e-6);
}

TEST(LinearRegressionTest, TwoFeatures) {
  // y = 2a - 3b + 7.
  Matrix x = Matrix::FromRows({{1, 1}, {2, 1}, {1, 2}, {3, 5}, {4, 2}});
  std::vector<double> y;
  for (int64_t r = 0; r < x.rows(); ++r) {
    y.push_back(2 * x.At(r, 0) - 3 * x.At(r, 1) + 7);
  }
  LinearModel model = LinearRegression::Fit(x, y, {"a", "b"}).ValueOrDie();
  EXPECT_NEAR(model.coefficients[0], 2.0, 1e-9);
  EXPECT_NEAR(model.coefficients[1], -3.0, 1e-9);
  EXPECT_NEAR(model.intercept, 7.0, 1e-9);
}

TEST(LinearRegressionTest, ZeroFeaturesFitsMean) {
  Matrix x(4, 0);
  LinearModel model = LinearRegression::Fit(x, {1, 2, 3, 4}, {}).ValueOrDie();
  EXPECT_DOUBLE_EQ(model.intercept, 2.5);
  EXPECT_TRUE(model.coefficients.empty());
}

TEST(LinearRegressionTest, ConstantTargetShortCircuits) {
  Matrix x = Matrix::FromRows({{1}, {2}, {3}});
  LinearModel model = LinearRegression::Fit(x, {5, 5, 5}, {"f"}).ValueOrDie();
  EXPECT_DOUBLE_EQ(model.intercept, 5.0);
  EXPECT_DOUBLE_EQ(model.coefficients[0], 0.0);
  EXPECT_DOUBLE_EQ(model.r2, 1.0);
}

TEST(LinearRegressionTest, UnderdeterminedFallsBackToRidge) {
  // One point, one feature: any line through it fits; ridge keeps it finite.
  Matrix x = Matrix::FromRows({{13000}});
  LinearModel model = LinearRegression::Fit(x, {13790}, {"bonus"}).ValueOrDie();
  EXPECT_NEAR(model.Predict({13000}), 13790, 1.0);
}

TEST(LinearRegressionTest, CollinearFeaturesFallBackToRidge) {
  Matrix x = Matrix::FromRows({{1, 2}, {2, 4}, {3, 6}, {4, 8}});
  std::vector<double> y = {3, 6, 9, 12};  // y = 3*col1 (or 1.5*col2)
  LinearModel model = LinearRegression::Fit(x, y, {"a", "b"}).ValueOrDie();
  for (int64_t r = 0; r < x.rows(); ++r) {
    EXPECT_NEAR(model.Predict({x.At(r, 0), x.At(r, 1)}), y[static_cast<size_t>(r)], 1e-2);
  }
}

TEST(LinearRegressionTest, InputValidation) {
  Matrix x = Matrix::FromRows({{1}});
  EXPECT_TRUE(LinearRegression::Fit(Matrix(0, 1), {}, {"f"}).status().IsInvalidArgument());
  EXPECT_TRUE(LinearRegression::Fit(x, {1, 2}, {"f"}).status().IsInvalidArgument());
  EXPECT_TRUE(LinearRegression::Fit(x, {1}, {"f", "g"}).status().IsInvalidArgument());
}

TEST(LinearRegressionTest, DiagnosticsOnNoisyData) {
  Rng rng(4242);
  int64_t n = 400;
  Matrix x(n, 1);
  std::vector<double> y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    x.At(i, 0) = rng.Uniform(0, 100);
    y[static_cast<size_t>(i)] = 3.0 * x.At(i, 0) + 10 + rng.Normal(0, 5);
  }
  LinearModel model = LinearRegression::Fit(x, y, {"f"}).ValueOrDie();
  EXPECT_NEAR(model.coefficients[0], 3.0, 0.05);
  EXPECT_GT(model.r2, 0.99);
  EXPECT_NEAR(model.mae, 4.0, 1.5);  // E|N(0,5)| ≈ 3.99
  EXPECT_NEAR(model.rmse, 5.0, 1.5);
}

TEST(LinearModelTest, PredictBatchMatchesPredict) {
  LinearModel model;
  model.intercept = 1.0;
  model.coefficients = {2.0, -1.0};
  model.feature_names = {"a", "b"};
  Matrix x = Matrix::FromRows({{1, 1}, {0, 5}});
  std::vector<double> batch = model.PredictBatch(x);
  EXPECT_DOUBLE_EQ(batch[0], model.Predict({1, 1}));
  EXPECT_DOUBLE_EQ(batch[1], model.Predict({0, 5}));
}

TEST(LinearModelTest, NumActiveTermsIgnoresZeros) {
  LinearModel model;
  model.coefficients = {1.5, 0.0, -2.0};
  model.feature_names = {"a", "b", "c"};
  EXPECT_EQ(model.NumActiveTerms(), 2);
}

TEST(LinearModelTest, ToStringRendering) {
  LinearModel model;
  model.intercept = 1000;
  model.coefficients = {1.05};
  model.feature_names = {"old_bonus"};
  EXPECT_EQ(model.ToString("new_bonus"), "new_bonus = 1.05 × old_bonus + 1000");

  LinearModel negative;
  negative.intercept = -50;
  negative.coefficients = {-2.0, 1.0};
  negative.feature_names = {"a", "b"};
  EXPECT_EQ(negative.ToString("y"), "y = -2 × a + b - 50");

  LinearModel constant;
  constant.intercept = 42;
  EXPECT_EQ(constant.ToString("y"), "y = 42");
}

/// Property: planted coefficients are recovered across dimensions and sizes.
struct PlantedCase {
  int features;
  int64_t rows;
};

class PlantedRecovery : public ::testing::TestWithParam<PlantedCase> {};

TEST_P(PlantedRecovery, ExactOnNoiselessData) {
  auto [p, n] = GetParam();
  Rng rng(99 + static_cast<uint64_t>(p) * 7 + static_cast<uint64_t>(n));
  Matrix x(n, p);
  std::vector<double> planted(static_cast<size_t>(p));
  for (int c = 0; c < p; ++c) planted[static_cast<size_t>(c)] = rng.Uniform(-3, 3);
  double intercept = rng.Uniform(-100, 100);
  std::vector<double> y(static_cast<size_t>(n), intercept);
  for (int64_t r = 0; r < n; ++r) {
    for (int c = 0; c < p; ++c) {
      x.At(r, c) = rng.Uniform(-50, 50);
      y[static_cast<size_t>(r)] += planted[static_cast<size_t>(c)] * x.At(r, c);
    }
  }
  std::vector<std::string> names;
  for (int c = 0; c < p; ++c) names.push_back("f" + std::to_string(c));
  LinearModel model = LinearRegression::Fit(x, y, names).ValueOrDie();
  EXPECT_NEAR(model.intercept, intercept, 1e-6);
  for (int c = 0; c < p; ++c) {
    EXPECT_NEAR(model.coefficients[static_cast<size_t>(c)],
                planted[static_cast<size_t>(c)], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlantedRecovery,
                         ::testing::Values(PlantedCase{1, 5}, PlantedCase{1, 100},
                                           PlantedCase{2, 10}, PlantedCase{3, 50},
                                           PlantedCase{5, 200}, PlantedCase{8, 1000}));

}  // namespace
}  // namespace charles
