/// \file
/// RemoteBackend over loopback workers (ISSUE 6): install-bundle round
/// trips, coordinator-level parity with InProcessBackend for all three task
/// kinds, install-once-per-epoch accounting, wire-version negotiation
/// (skewed workers excluded at handshake, never merged), deterministic
/// kTaskError propagation without retry, and the headline engine-level
/// contract — kRemote runs bit-identical to unsharded runs on both
/// workloads at 1/2/8 shards.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "distributed/coordinator.h"
#include "distributed/in_process_backend.h"
#include "distributed/remote_backend.h"
#include "distributed/remote_protocol.h"
#include "distributed/shard_planner.h"
#include "distributed/worker_service.h"
#include "net/frame.h"
#include "net/socket.h"
#include "workload/billionaires_gen.h"
#include "workload/employee_gen.h"

namespace charles {
namespace {

// --- Synthetic shard input (same shapes as distributed_test.cc) -------------

struct SyntheticInput {
  std::vector<std::string> shortlist;
  ColumnCache columns;
  std::vector<double> y_old;
  std::vector<double> y_new;
  std::vector<RowSet> leaf_storage;
  ShardInput input;
};

SyntheticInput MakeSyntheticInput(int64_t rows) {
  SyntheticInput s;
  s.shortlist = {"a", "b"};
  std::vector<double> a(static_cast<size_t>(rows)), b(static_cast<size_t>(rows));
  s.y_old.resize(static_cast<size_t>(rows));
  s.y_new.resize(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    size_t i = static_cast<size_t>(r);
    a[i] = 1000.0 + 3.0 * static_cast<double>(r);
    b[i] = 50.0 - 0.25 * static_cast<double>(r % 97);
    s.y_old[i] = 10.0 + 0.5 * a[i];
    s.y_new[i] = (r % 3 == 0) ? s.y_old[i] : 1.05 * s.y_old[i] + 2.0 * b[i];
  }
  s.columns.Insert("a", std::move(a));
  s.columns.Insert("b", std::move(b));

  std::vector<int64_t> stride, prefix;
  for (int64_t r = 0; r < rows; r += 3) stride.push_back(r);
  for (int64_t r = 0; r < rows / 2; ++r) prefix.push_back(r);
  s.leaf_storage.push_back(RowSet::All(rows));
  s.leaf_storage.push_back(RowSet(std::move(stride)));
  s.leaf_storage.push_back(RowSet(std::move(prefix)));

  s.input.shortlist = &s.shortlist;
  s.input.columns = &s.columns;
  s.input.y_old = &s.y_old;
  s.input.y_new = &s.y_new;
  for (const RowSet& leaf : s.leaf_storage) s.input.leaves.push_back(&leaf);
  return s;
}

ShardTask MakeMomentsTask(const ShardInput& input) {
  ShardTask task;
  task.kind = ShardTaskKind::kLeafMoments;
  for (size_t l = 0; l < input.leaves.size(); ++l) {
    task.leaves.push_back(static_cast<int64_t>(l));
  }
  return task;
}

ShardTask MakeSignalTask() {
  ShardTask task;
  task.kind = ShardTaskKind::kSignalStats;
  return task;
}

ShardTask MakeErrorTask() {
  ShardTask task;
  task.kind = ShardTaskKind::kErrorPartials;
  ErrorProbe p0;
  p0.leaf = 0;
  p0.features = {0};
  p0.intercept = 12.5;
  p0.coefficients = {1.05};
  task.probes.push_back(p0);
  ErrorProbe p1;
  p1.leaf = 1;
  p1.features = {0, 1};
  p1.intercept = -3.0;
  p1.coefficients = {0.5, 2.0};
  task.probes.push_back(p1);
  return task;
}

/// The error probes re-tagged as a score task: same models, plus the
/// exactness band the worker tallies against.
ShardTask MakeScoreTask() {
  ShardTask task = MakeErrorTask();
  task.kind = ShardTaskKind::kScorePartials;
  // Sized to the synthetic input's error decades so the band splits rows.
  task.score_tolerance = 1000.0;
  return task;
}

/// Bitwise equality of two merged task results (elapsed time excluded).
void ExpectBitIdenticalMerges(const CoordinatorTaskResult& expected,
                              const CoordinatorTaskResult& actual) {
  EXPECT_EQ(expected.kind, actual.kind);
  EXPECT_EQ(expected.shards_executed, actual.shards_executed);
  EXPECT_EQ(expected.rows_scanned, actual.rows_scanned);
  EXPECT_EQ(expected.blocks_merged, actual.blocks_merged);
  ASSERT_EQ(expected.leaves.size(), actual.leaves.size());
  for (size_t l = 0; l < expected.leaves.size(); ++l) {
    EXPECT_TRUE(expected.leaves[l].stats.BitIdenticalTo(actual.leaves[l].stats))
        << "leaf " << l;
    EXPECT_EQ(std::memcmp(&expected.leaves[l].max_abs_delta,
                          &actual.leaves[l].max_abs_delta, sizeof(double)),
              0);
    EXPECT_EQ(expected.leaves[l].blocks_merged, actual.leaves[l].blocks_merged);
  }
  EXPECT_TRUE(expected.signal_stats.BitIdenticalTo(actual.signal_stats));
  EXPECT_EQ(std::memcmp(&expected.signal_max_abs_delta,
                        &actual.signal_max_abs_delta, sizeof(double)),
            0);
  EXPECT_EQ(expected.signal_rows_changed, actual.signal_rows_changed);
  ASSERT_EQ(expected.probes.size(), actual.probes.size());
  for (size_t p = 0; p < expected.probes.size(); ++p) {
    EXPECT_TRUE(
        expected.probes[p].partials.BitIdenticalTo(actual.probes[p].partials))
        << "probe " << p;
    EXPECT_EQ(expected.probes[p].blocks_merged, actual.probes[p].blocks_merged);
  }
  ASSERT_EQ(expected.score_probes.size(), actual.score_probes.size());
  for (size_t p = 0; p < expected.score_probes.size(); ++p) {
    EXPECT_TRUE(expected.score_probes[p].partials.BitIdenticalTo(
        actual.score_probes[p].partials))
        << "score probe " << p;
    EXPECT_EQ(expected.score_probes[p].blocks_merged,
              actual.score_probes[p].blocks_merged);
  }
}

// --- Protocol payload round trips -------------------------------------------

TEST(RemoteProtocolTest, HandshakePayloadsRoundTrip) {
  RemoteVersionRange range =
      ParseVersionRange(SerializeVersionRange(3, 9)).ValueOrDie();
  EXPECT_EQ(range.min, 3);
  EXPECT_EQ(range.max, 9);
  EXPECT_EQ(ParseChosenVersion(SerializeChosenVersion(7)).ValueOrDie(), 7);
  EXPECT_TRUE(ParseVersionRange("abc").status().IsIOError());
  EXPECT_TRUE(ParseChosenVersion("").status().IsIOError());
}

TEST(RemoteProtocolTest, StatusPayloadPreservesCategoryAndMessage) {
  Status decoded = ParseStatusPayload(
      SerializeStatusPayload(Status::InvalidArgument("probe leaf out of range")));
  EXPECT_TRUE(decoded.IsInvalidArgument());
  EXPECT_NE(decoded.message().find("probe leaf out of range"), std::string::npos);
  // A worker never errors with OK; an OK payload is itself a wire error.
  EXPECT_TRUE(ParseStatusPayload(SerializeStatusPayload(Status::OK())).IsIOError());
  EXPECT_TRUE(ParseStatusPayload("garbage").IsIOError());
}

TEST(RemoteProtocolTest, InstallBundleRoundTripIsExact) {
  SyntheticInput s = MakeSyntheticInput(500);
  ShardPlan plan = PlanShards(500, 64, 3);
  std::string bundle;
  ASSERT_TRUE(SerializeInstallInput(17, s.input, plan, &bundle).ok());
  std::unique_ptr<InstalledInput> installed =
      DeserializeInstallInput(bundle.data(), bundle.size()).ValueOrDie();
  EXPECT_EQ(installed->epoch, 17);
  EXPECT_EQ(installed->plan.ToString(), plan.ToString());
  EXPECT_EQ(installed->shortlist, s.shortlist);
  for (const std::string& name : s.shortlist) {
    const std::vector<double>* original = s.columns.Find(name);
    const std::vector<double>* shipped = installed->columns.Find(name);
    ASSERT_NE(shipped, nullptr) << name;
    ASSERT_EQ(shipped->size(), original->size());
    EXPECT_EQ(std::memcmp(shipped->data(), original->data(),
                          original->size() * sizeof(double)),
              0)
        << name;
  }
  ASSERT_EQ(installed->leaves.size(), s.leaf_storage.size());
  for (size_t l = 0; l < s.leaf_storage.size(); ++l) {
    EXPECT_EQ(installed->leaves[l].indices(), s.leaf_storage[l].indices());
  }
  // The kernel over the worker's owned reconstruction produces the same
  // bytes as over the coordinator's original view — the determinism hinge.
  for (const ShardTask& task :
       {MakeMomentsTask(s.input), MakeSignalTask(), MakeErrorTask(),
        MakeScoreTask()}) {
    for (int64_t shard = 0; shard < plan.num_shards(); ++shard) {
      ShardTaskResult original =
          ExecuteShardTaskKernel(s.input, plan, shard, task).ValueOrDie();
      ShardTaskResult reconstructed =
          ExecuteShardTaskKernel(installed->View(), installed->plan, shard, task)
              .ValueOrDie();
      std::string original_wire, reconstructed_wire;
      original.SerializeTo(&original_wire);
      reconstructed.SerializeTo(&reconstructed_wire);
      // elapsed_seconds differs per run; zero it before the byte compare.
      original.elapsed_seconds = 0.0;
      reconstructed.elapsed_seconds = 0.0;
      original_wire.clear();
      reconstructed_wire.clear();
      original.SerializeTo(&original_wire);
      reconstructed.SerializeTo(&reconstructed_wire);
      EXPECT_EQ(original_wire, reconstructed_wire)
          << ShardTaskKindName(task.kind) << " shard " << shard;
    }
  }
}

TEST(RemoteProtocolTest, MalformedInstallBundleRejected) {
  SyntheticInput s = MakeSyntheticInput(120);
  ShardPlan plan = PlanShards(120, 64, 2);
  std::string bundle;
  ASSERT_TRUE(SerializeInstallInput(1, s.input, plan, &bundle).ok());
  EXPECT_TRUE(DeserializeInstallInput(bundle.data(), bundle.size()).ok());
  EXPECT_TRUE(DeserializeInstallInput(bundle.data(), bundle.size() / 2)
                  .status()
                  .IsIOError());
  EXPECT_TRUE(DeserializeInstallInput(bundle.data(), 3).status().IsIOError());
  std::string corrupted = bundle;
  corrupted[0] = 'X';
  EXPECT_TRUE(DeserializeInstallInput(corrupted.data(), corrupted.size())
                  .status()
                  .IsIOError());
  std::string trailing = bundle + "!";
  EXPECT_TRUE(DeserializeInstallInput(trailing.data(), trailing.size())
                  .status()
                  .IsIOError());
}

// --- Loopback execution -----------------------------------------------------

std::unique_ptr<LoopbackWorker> StartWorker(WorkerServiceOptions options = {}) {
  return LoopbackWorker::Start(std::move(options)).ValueOrDie();
}

std::unique_ptr<RemoteBackend> MakeBackend(
    const std::vector<std::string>& endpoints) {
  RemoteBackendOptions options;
  options.endpoints = endpoints;
  options.retry_backoff_ms = 1;  // keep retry tests fast
  return RemoteBackend::Create(std::move(options)).ValueOrDie();
}

TEST(RemoteBackendTest, CreateValidatesEndpoints) {
  EXPECT_TRUE(RemoteBackend::Create({}).status().IsInvalidArgument());
  RemoteBackendOptions bad;
  bad.endpoints = {"127.0.0.1:9400", "not-an-endpoint"};
  EXPECT_TRUE(RemoteBackend::Create(std::move(bad)).status().IsInvalidArgument());
}

TEST(RemoteBackendTest, CoordinatorParityAllKindsAllShardCounts) {
  SyntheticInput s = MakeSyntheticInput(777);
  std::unique_ptr<LoopbackWorker> worker = StartWorker();
  std::unique_ptr<RemoteBackend> remote = MakeBackend({worker->endpoint()});
  InProcessBackend in_process;
  for (int shards : {1, 2, 8}) {
    ShardPlan plan = PlanShards(777, 64, shards);
    for (const ShardTask& task :
         {MakeMomentsTask(s.input), MakeSignalTask(), MakeErrorTask(),
        MakeScoreTask()}) {
      CoordinatorTaskResult expected =
          Coordinator::RunTask(s.input, plan, &in_process, nullptr, task)
              .ValueOrDie();
      CoordinatorTaskResult actual =
          Coordinator::RunTask(s.input, plan, remote.get(), nullptr, task)
              .ValueOrDie();
      SCOPED_TRACE(ShardTaskKindName(task.kind) + " at " +
                   std::to_string(shards) + " shards");
      ExpectBitIdenticalMerges(expected, actual);
    }
  }
  RemoteBackendDiagnostics diagnostics = remote->Diagnostics();
  EXPECT_EQ(diagnostics.task_retries, 0);
  ASSERT_EQ(diagnostics.workers.size(), 1u);
  EXPECT_TRUE(diagnostics.workers[0].healthy);
}

TEST(RemoteBackendTest, InputShipsOncePerEpochAndPlanChangeRolls) {
  SyntheticInput s = MakeSyntheticInput(400);
  std::unique_ptr<LoopbackWorker> worker = StartWorker();
  std::unique_ptr<RemoteBackend> remote = MakeBackend({worker->endpoint()});
  ShardPlan plan = PlanShards(400, 64, 4);
  int64_t tasks = 0;
  for (const ShardTask& task :
       {MakeMomentsTask(s.input), MakeSignalTask(), MakeErrorTask(),
        MakeScoreTask()}) {
    for (int64_t shard = 0; shard < plan.num_shards(); ++shard) {
      ASSERT_TRUE(remote->ExecuteTask(s.input, plan, shard, task).ok());
      ++tasks;
    }
  }
  RemoteBackendDiagnostics after_first = remote->Diagnostics();
  EXPECT_EQ(after_first.input_epochs, 1);
  EXPECT_EQ(after_first.input_installs, 1);  // one worker, one epoch
  EXPECT_EQ(after_first.tasks_dispatched, tasks);

  // A different plan over the same snapshot is a new epoch: one reinstall.
  ShardPlan replanned = PlanShards(400, 64, 2);
  ASSERT_TRUE(
      remote->ExecuteTask(s.input, replanned, 0, MakeSignalTask()).ok());
  RemoteBackendDiagnostics after_replan = remote->Diagnostics();
  EXPECT_EQ(after_replan.input_epochs, 2);
  EXPECT_EQ(after_replan.input_installs, 2);
}

TEST(RemoteBackendTest, DeterministicTaskErrorPropagatesWithoutRetry) {
  SyntheticInput s = MakeSyntheticInput(200);
  std::unique_ptr<LoopbackWorker> worker = StartWorker();
  std::unique_ptr<RemoteBackend> remote = MakeBackend({worker->endpoint()});
  ShardPlan plan = PlanShards(200, 64, 2);
  ShardTask bad_task;
  bad_task.kind = ShardTaskKind::kErrorPartials;
  ErrorProbe bad;
  bad.leaf = 99;  // out of range: the kernel fails deterministically
  bad_task.probes.push_back(bad);
  Status status = remote->ExecuteTask(s.input, plan, 0, bad_task).status();
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  // Rerunning a deterministic failure elsewhere would only repeat it: no
  // retry, and the worker is still healthy (its transport is fine).
  RemoteBackendDiagnostics diagnostics = remote->Diagnostics();
  EXPECT_EQ(diagnostics.task_retries, 0);
  ASSERT_EQ(diagnostics.workers.size(), 1u);
  EXPECT_TRUE(diagnostics.workers[0].healthy);
  // The connection survives: a good task right after succeeds.
  EXPECT_TRUE(remote->ExecuteTask(s.input, plan, 0, MakeSignalTask()).ok());
}

TEST(RemoteBackendTest, VersionSkewedWorkerIsExcludedAtHandshake) {
  SyntheticInput s = MakeSyntheticInput(300);
  WorkerServiceOptions skewed;
  skewed.version_min = 99;  // disjoint from [kRemoteWireVersionMin, Max]
  skewed.version_max = 99;
  std::unique_ptr<LoopbackWorker> bad_worker = StartWorker(std::move(skewed));
  std::unique_ptr<LoopbackWorker> good_worker = StartWorker();
  // The skewed worker is listed first, so it receives the first dispatch
  // attempt — which must fail the handshake and reassign, never merge.
  std::unique_ptr<RemoteBackend> remote =
      MakeBackend({bad_worker->endpoint(), good_worker->endpoint()});
  ShardPlan plan = PlanShards(300, 64, 3);
  InProcessBackend in_process;
  CoordinatorTaskResult expected =
      Coordinator::RunTask(s.input, plan, &in_process, nullptr,
                           MakeMomentsTask(s.input))
          .ValueOrDie();
  CoordinatorTaskResult actual =
      Coordinator::RunTask(s.input, plan, remote.get(), nullptr,
                           MakeMomentsTask(s.input))
          .ValueOrDie();
  ExpectBitIdenticalMerges(expected, actual);

  RemoteBackendDiagnostics diagnostics = remote->Diagnostics();
  ASSERT_EQ(diagnostics.workers.size(), 2u);
  EXPECT_TRUE(diagnostics.workers[0].version_rejected);
  EXPECT_FALSE(diagnostics.workers[0].healthy);
  EXPECT_NE(diagnostics.workers[0].last_error.find("wire versions"),
            std::string::npos)
      << diagnostics.workers[0].last_error;
  EXPECT_EQ(diagnostics.workers[0].tasks_dispatched, 0);  // never ran a task
  EXPECT_TRUE(diagnostics.workers[1].healthy);
  EXPECT_GT(diagnostics.workers[1].tasks_dispatched, 0);
}

TEST(RemoteBackendTest, PreviousWireVersionWorkerIsRejectedAtHandshake) {
  // The concrete v3 → v4 skew: a worker from the build before kScorePartials
  // (wire range [3, 3]) must be excluded at the handshake. If it were allowed
  // to negotiate, it would mis-parse the unconditional trailing
  // score_tolerance on every CTK1 frame — the reject is what keeps the skew
  // a clean handshake error instead of a mid-run parse failure.
  SyntheticInput s = MakeSyntheticInput(200);
  WorkerServiceOptions v3;
  v3.version_min = 3;
  v3.version_max = 3;
  std::unique_ptr<LoopbackWorker> worker = StartWorker(std::move(v3));
  std::unique_ptr<RemoteBackend> remote = MakeBackend({worker->endpoint()});
  ShardPlan plan = PlanShards(200, 64, 2);
  Status status =
      remote->ExecuteTask(s.input, plan, 0, MakeScoreTask()).status();
  ASSERT_TRUE(status.IsIOError()) << status.ToString();
  RemoteBackendDiagnostics diagnostics = remote->Diagnostics();
  ASSERT_EQ(diagnostics.workers.size(), 1u);
  EXPECT_TRUE(diagnostics.workers[0].version_rejected);
  EXPECT_EQ(diagnostics.workers[0].tasks_dispatched, 0);
}

TEST(RemoteBackendTest, AllWorkersVersionSkewedFailsWithCleanDiagnostic) {
  SyntheticInput s = MakeSyntheticInput(200);
  WorkerServiceOptions skewed;
  skewed.version_min = 99;
  skewed.version_max = 99;
  std::unique_ptr<LoopbackWorker> worker = StartWorker(std::move(skewed));
  std::unique_ptr<RemoteBackend> remote = MakeBackend({worker->endpoint()});
  ShardPlan plan = PlanShards(200, 64, 2);
  Status status = remote->ExecuteTask(s.input, plan, 0, MakeSignalTask()).status();
  ASSERT_TRUE(status.IsIOError()) << status.ToString();
  EXPECT_NE(status.message().find("wire versions"), std::string::npos)
      << status.ToString();
}

TEST(WorkerServiceTest, PingAndShutdownFrames) {
  std::unique_ptr<LoopbackWorker> worker = StartWorker();
  net::Endpoint endpoint{"127.0.0.1", worker->port()};
  int fd = net::TcpConnect(endpoint, 2'000).ValueOrDie();
  int32_t version =
      RemoteClientHandshake(fd, 2'000, kRemoteMaxFrameBytes).ValueOrDie();
  EXPECT_EQ(version, kRemoteWireVersionMax);
  ASSERT_TRUE(net::WriteFrame(
                  fd, static_cast<int32_t>(RemoteMessageType::kPing), "")
                  .ok());
  net::Frame pong = net::ReadFrame(fd, 2'000, kRemoteMaxFrameBytes).ValueOrDie();
  EXPECT_EQ(pong.type, static_cast<int32_t>(RemoteMessageType::kPong));
  ASSERT_TRUE(net::WriteFrame(
                  fd, static_cast<int32_t>(RemoteMessageType::kShutdown), "")
                  .ok());
  net::Frame ack = net::ReadFrame(fd, 2'000, kRemoteMaxFrameBytes).ValueOrDie();
  EXPECT_EQ(ack.type, static_cast<int32_t>(RemoteMessageType::kShutdownOk));
  net::CloseFd(fd);
  worker->Stop();
}

TEST(WorkerServiceTest, ExecuteBeforeInstallFailsCleanly) {
  std::unique_ptr<LoopbackWorker> worker = StartWorker();
  net::Endpoint endpoint{"127.0.0.1", worker->port()};
  int fd = net::TcpConnect(endpoint, 2'000).ValueOrDie();
  ASSERT_TRUE(RemoteClientHandshake(fd, 2'000, kRemoteMaxFrameBytes).ok());
  std::string request;
  SerializeExecuteRequest(/*epoch=*/5, /*shard=*/0, /*run_id=*/0,
                          /*parent_span=*/0, /*traced=*/false, MakeSignalTask(),
                          &request);
  ASSERT_TRUE(net::WriteFrame(
                  fd, static_cast<int32_t>(RemoteMessageType::kExecuteTask),
                  request)
                  .ok());
  net::Frame reply = net::ReadFrame(fd, 2'000, kRemoteMaxFrameBytes).ValueOrDie();
  EXPECT_EQ(reply.type, static_cast<int32_t>(RemoteMessageType::kTaskError));
  Status decoded = ParseStatusPayload(reply.payload);
  EXPECT_FALSE(decoded.ok());
  EXPECT_NE(decoded.message().find("reinstall"), std::string::npos)
      << decoded.ToString();
  net::CloseFd(fd);
}

// --- Engine-level parity: kRemote vs unsharded ------------------------------

void ExpectIdenticalRuns(const SummaryList& expected, const SummaryList& actual) {
  ASSERT_EQ(expected.summaries.size(), actual.summaries.size());
  for (size_t i = 0; i < expected.summaries.size(); ++i) {
    const ChangeSummary& a = expected.summaries[i];
    const ChangeSummary& b = actual.summaries[i];
    EXPECT_EQ(a.Signature(), b.Signature()) << "rank " << i;
    double sa = a.scores().score, sb = b.scores().score;
    double aa = a.scores().accuracy, ab = b.scores().accuracy;
    EXPECT_EQ(std::memcmp(&sa, &sb, sizeof(double)), 0) << "rank " << i;
    EXPECT_EQ(std::memcmp(&aa, &ab, sizeof(double)), 0) << "rank " << i;
    EXPECT_EQ(a.ToString(), b.ToString()) << "rank " << i;
  }
  EXPECT_EQ(expected.labelings, actual.labelings);
  EXPECT_EQ(expected.partitions, actual.partitions);
  EXPECT_EQ(expected.candidates_evaluated, actual.candidates_evaluated);
  EXPECT_EQ(expected.candidates_deduped, actual.candidates_deduped);
}

struct Workload {
  Table source;
  Table target;
  CharlesOptions options;
};

Workload MakeEmployeeWorkload() {
  EmployeeGenOptions gen;
  gen.num_rows = 600;
  Workload w;
  w.source = GenerateEmployees(gen).ValueOrDie();
  w.target = MakeEmployeeBonusPolicy().Apply(w.source).ValueOrDie();
  w.options.target_attribute = "bonus";
  w.options.key_columns = {"emp_id"};
  w.options.stats_block_rows = 64;
  w.options.num_threads = 2;
  return w;
}

Workload MakeBillionairesWorkload() {
  BillionairesGenOptions gen;
  gen.num_rows = 700;
  Workload w;
  w.source = GenerateBillionaires(gen).ValueOrDie();
  w.target = MakeMarketPolicy().Apply(w.source).ValueOrDie();
  w.options.target_attribute = "net_worth";
  w.options.key_columns = {"person_id"};
  w.options.stats_block_rows = 64;
  w.options.num_threads = 2;
  return w;
}

void RunRemoteShardParity(const Workload& w) {
  SummaryList unsharded = SummarizeChanges(w.source, w.target, w.options).ValueOrDie();
  ASSERT_FALSE(unsharded.summaries.empty());
  EXPECT_EQ(unsharded.shards_used, 0);
  EXPECT_EQ(unsharded.remote_tasks_dispatched, 0);
  std::unique_ptr<LoopbackWorker> worker_a = StartWorker();
  std::unique_ptr<LoopbackWorker> worker_b = StartWorker();
  for (int shards : {1, 2, 8}) {
    CharlesOptions sharded_options = w.options;
    sharded_options.num_shards = shards;
    sharded_options.shard_backend = ShardBackendKind::kRemote;
    sharded_options.remote_workers = {worker_a->endpoint(), worker_b->endpoint()};
    SummaryList sharded =
        SummarizeChanges(w.source, w.target, sharded_options).ValueOrDie();
    EXPECT_EQ(sharded.shards_used, shards) << "requested " << shards;
    EXPECT_GT(sharded.shard_rows_scanned, 0);
    EXPECT_GT(sharded.remote_tasks_dispatched, 0);
    EXPECT_EQ(sharded.remote_task_retries, 0);
    EXPECT_GT(sharded.remote_input_installs, 0);
    ASSERT_EQ(sharded.remote_workers.size(), 2u);
    ExpectIdenticalRuns(unsharded, sharded);
  }
}

TEST(RemoteParityTest, EmployeeRemoteBitIdenticalAt1_2_8Shards) {
  RunRemoteShardParity(MakeEmployeeWorkload());
}

TEST(RemoteParityTest, BillionairesRemoteBitIdenticalAt1_2_8Shards) {
  RunRemoteShardParity(MakeBillionairesWorkload());
}

TEST(RemoteParityTest, TraceSpansPropagateFromWorkerToCoordinator) {
  // The headline observability contract: one remote run with tracing on
  // yields a single merged trace holding the coordinator's stage/round/
  // dispatch spans AND the workers' task spans, all under one trace id.
  Workload w = MakeEmployeeWorkload();
  std::unique_ptr<LoopbackWorker> worker = StartWorker();
  CharlesOptions options = w.options;
  options.num_shards = 2;
  options.shard_backend = ShardBackendKind::kRemote;
  options.remote_workers = {worker->endpoint()};
  options.trace = true;
  SummaryList traced =
      SummarizeChanges(w.source, w.target, options).ValueOrDie();
  ASSERT_NE(traced.trace, nullptr);
  ASSERT_EQ(traced.run_id.size(), 16u);

  // The trace id is the run id — the cross-process correlation key.
  EXPECT_EQ(obs::FormatRunId(traced.trace->trace_id()), traced.run_id);

  std::vector<obs::SpanRecord> spans = traced.trace->Snapshot();
  ASSERT_FALSE(spans.empty());
  auto count_named = [&](const char* name) {
    int64_t n = 0;
    for (const obs::SpanRecord& span : spans) {
      if (span.name == name) ++n;
    }
    return n;
  };
  EXPECT_GT(count_named("dispatch"), 0);
  EXPECT_GT(count_named("merge"), 0);
  EXPECT_GT(count_named("worker:task"), 0);

  // Every imported worker span is stitched into the coordinator's tree:
  // parents resolve, ids are unique, and a worker:task span parents on a
  // dispatch span whose interval contains it.
  std::vector<const obs::SpanRecord*> by_id(spans.size() + 1, nullptr);
  for (const obs::SpanRecord& span : spans) {
    ASSERT_GE(span.id, 1u);
    ASSERT_LE(span.id, spans.size());
    ASSERT_EQ(by_id[span.id], nullptr) << "duplicate span id " << span.id;
    by_id[span.id] = &span;
  }
  for (const obs::SpanRecord& span : spans) {
    if (span.parent != 0) {
      ASSERT_LE(span.parent, spans.size()) << span.name;
      EXPECT_NE(by_id[span.parent], nullptr) << span.name;
    }
    if (span.name == "worker:task") {
      ASSERT_NE(span.parent, 0u);
      const obs::SpanRecord* parent = by_id[span.parent];
      ASSERT_NE(parent, nullptr);
      EXPECT_EQ(parent->name, "dispatch");
      EXPECT_GE(span.start_ns, parent->start_ns);
      EXPECT_GE(span.dur_ns, 0);
    }
  }

  // The Chrome export carries both sides of the trace and the shared id.
  std::string json = traced.trace->ToChromeTraceJson();
  EXPECT_NE(json.find("worker:task"), std::string::npos);
  EXPECT_NE(json.find("dispatch"), std::string::npos);
  EXPECT_NE(json.find(traced.run_id), std::string::npos);

  // Tracing off: no recorder is attached, and the output is untouched —
  // the parity suites above run with trace off and pin bit-identity.
  options.trace = false;
  SummaryList untraced =
      SummarizeChanges(w.source, w.target, options).ValueOrDie();
  EXPECT_EQ(untraced.trace, nullptr);
  EXPECT_EQ(untraced.run_id, traced.run_id);  // same inputs, same fingerprint
  ExpectIdenticalRuns(untraced, traced);
}

TEST(RemoteParityTest, RemoteBackendRequiresWorkerEndpoints) {
  Workload w = MakeEmployeeWorkload();
  CharlesOptions options = w.options;
  options.num_shards = 2;
  options.shard_backend = ShardBackendKind::kRemote;
  // No remote_workers configured: rejected at validation, before any dial.
  EXPECT_TRUE(
      SummarizeChanges(w.source, w.target, options).status().IsInvalidArgument());
}

}  // namespace
}  // namespace charles
