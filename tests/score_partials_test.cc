/// \file
/// ScorePartials: the distributable accuracy fold behind row-free scoring.
/// The properties under test are the ones the engine's determinism contract
/// leans on: the canonical block fold's Σ chain is bit-identical to the
/// error fold's (same addends, same order); block-aligned merge splits
/// reproduce the whole fold's bits exactly (the shard-merge identity); the
/// exact count is order-free (equal under every block size); the degenerate
/// single-chain fold replays a serial row scan bitwise (what keeps
/// Scorer::Accuracy and AccuracyFromPartials interchangeable); and the wire
/// format round-trips bit-for-bit while rejecting truncation and impossible
/// tallies. All of it under adversarial magnitudes — huge/tiny decades,
/// denormals, signed zeros — where any reassociation shows up immediately.

#include "linalg/score_partials.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "core/scoring.h"
#include "linalg/error_partials.h"

namespace charles {
namespace {

double AdversarialValue(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  switch (rng() % 8) {
    case 0:
      return unit(rng);
    case 1:
      return unit(rng) * 1e30;
    case 2:
      return unit(rng) * 1e-30;
    case 3:
      return -0.0;
    case 4:
      return 0.0;
    case 5:
      return std::numeric_limits<double>::denorm_min() *
             static_cast<double>(1 + rng() % 1000);
    case 6:
      return 1e8 + unit(rng);
    default: {
      int exp10 = static_cast<int>(rng() % 61) - 30;
      return unit(rng) * std::pow(10.0, exp10);
    }
  }
}

std::vector<double> AdversarialColumn(int64_t n, std::mt19937_64& rng) {
  std::vector<double> column(static_cast<size_t>(n));
  for (double& v : column) v = AdversarialValue(rng);
  return column;
}

/// Ascending global rows, either dense or a random subset (leaves are
/// subsets; subsets fragment the per-block runs).
std::vector<int64_t> MakeRows(int64_t n, bool subset, std::mt19937_64& rng) {
  std::vector<int64_t> rows;
  for (int64_t r = 0; r < n; ++r) {
    if (!subset || rng() % 3 != 0) rows.push_back(r);
  }
  if (rows.empty()) rows.push_back(n / 2);
  return rows;
}

TEST(ScorePartialsTest, AccumulateTracksSumCountAndBand) {
  ScorePartials partials;
  partials.Accumulate(10.0, 10.0, 0.5);  // exact hit
  partials.Accumulate(10.0, 10.4, 0.5);  // inside the band
  partials.Accumulate(10.0, 12.0, 0.5);  // outside
  EXPECT_EQ(partials.n, 3);
  EXPECT_EQ(partials.exact_count, 2);
  EXPECT_DOUBLE_EQ(partials.abs_error_sum, 2.4);
  EXPECT_DOUBLE_EQ(partials.mae(), 0.8);
  EXPECT_DOUBLE_EQ(partials.exact_fraction(), 2.0 / 3.0);
}

TEST(ScorePartialsTest, BandBoundaryIsInclusive) {
  // |error| == tolerance counts as exact — the band is closed, matching the
  // row-scan definition in Scorer.
  ScorePartials partials;
  partials.Accumulate(1.0, 1.5, 0.5);
  EXPECT_EQ(partials.exact_count, 1);
}

TEST(ScorePartialsTest, SingleChainFoldReplaysSerialRowScanBitwise) {
  // With every row in one block the canonical fold is one serial chain —
  // exactly the row scan Scorer::Accuracy used to run. This is the identity
  // that makes AccuracyFromPartials a drop-in for the scan.
  for (uint64_t seed = 0; seed < 50; ++seed) {
    std::mt19937_64 rng(seed * 101 + 3);
    int64_t n = 1 + static_cast<int64_t>(rng() % 500);
    std::vector<int64_t> rows = MakeRows(n, (rng() % 2) == 0, rng);
    std::vector<double> y = AdversarialColumn(static_cast<int64_t>(rows.size()), rng);
    std::vector<double> y_hat =
        AdversarialColumn(static_cast<int64_t>(rows.size()), rng);
    double tolerance = std::pow(10.0, static_cast<int>(rng() % 61) - 30);
    ScorePartials scan;
    for (size_t i = 0; i < y.size(); ++i) {
      scan.Accumulate(y[i], y_hat[i], tolerance);
    }
    ScorePartials fold =
        AccumulateScoreDiffBlocks(y, y_hat, rows, /*block_rows=*/n + 1, tolerance);
    EXPECT_TRUE(fold.BitIdenticalTo(scan)) << "seed " << seed;
  }
}

TEST(ScorePartialsTest, SumChainMatchesErrorFoldForEveryBlockSize) {
  // Σ|y − ŷ| replays AccumulateAbsDiffBlocks' addend chain exactly — the
  // property that lets one kScorePartials round double as the error round
  // (ScorePartials::error() is the SnapModel baseline).
  for (uint64_t seed = 0; seed < 50; ++seed) {
    std::mt19937_64 rng(seed * 509 + 7);
    int64_t n = 1 + static_cast<int64_t>(rng() % 400);
    std::vector<int64_t> rows = MakeRows(n, (rng() % 2) == 0, rng);
    std::vector<double> y = AdversarialColumn(static_cast<int64_t>(rows.size()), rng);
    std::vector<double> y_hat =
        AdversarialColumn(static_cast<int64_t>(rows.size()), rng);
    for (int64_t block_rows : {1L, 7L, 64L, n + 1}) {
      ScorePartials fold =
          AccumulateScoreDiffBlocks(y, y_hat, rows, block_rows, 0.25);
      ErrorPartials error_fold = AccumulateAbsDiffBlocks(y, y_hat, rows, block_rows);
      EXPECT_EQ(std::memcmp(&fold.abs_error_sum, &error_fold.abs_error_sum,
                            sizeof(double)),
                0)
          << "seed " << seed << " block " << block_rows;
      EXPECT_EQ(fold.n, error_fold.n);
      ErrorPartials projected = fold.error();
      EXPECT_TRUE(projected.BitIdenticalTo(error_fold))
          << "seed " << seed << " block " << block_rows;
    }
  }
}

TEST(ScorePartialsTest, ExactCountIsOrderFreeAcrossBlockSizes) {
  // The tally is an integer predicate count: every decomposition of the same
  // rows must agree exactly, whatever the Σ chain does.
  std::mt19937_64 rng(42);
  int64_t n = 777;
  std::vector<int64_t> rows = MakeRows(n, /*subset=*/true, rng);
  std::vector<double> y = AdversarialColumn(static_cast<int64_t>(rows.size()), rng);
  std::vector<double> y_hat =
      AdversarialColumn(static_cast<int64_t>(rows.size()), rng);
  double tolerance = 1e-2;
  ScorePartials reference =
      AccumulateScoreDiffBlocks(y, y_hat, rows, /*block_rows=*/n + 1, tolerance);
  for (int64_t block_rows : {1L, 3L, 17L, 64L, 256L}) {
    ScorePartials fold =
        AccumulateScoreDiffBlocks(y, y_hat, rows, block_rows, tolerance);
    EXPECT_EQ(fold.exact_count, reference.exact_count) << "block " << block_rows;
    EXPECT_EQ(fold.n, reference.n) << "block " << block_rows;
  }
}

TEST(ScorePartialsTest, BlockAlignedMergeSplitsReproduceWholeFoldBitwise) {
  // The shard-merge identity, replayed at the granularity it actually holds:
  // shards ship *per-block* partials and the coordinator merges them in
  // ascending block order. Split the rows at a block boundary, fold each
  // side's blocks independently, merge the block partials ascending — every
  // bit equal to the unsplit fold. (Merging two per-half aggregates instead
  // would re-associate the Σ chain; that is exactly why the wire carries
  // blocks, not shard totals.)
  auto fold_per_block = [](const std::vector<double>& y,
                           const std::vector<double>& y_hat,
                           const std::vector<int64_t>& rows, int64_t block_rows,
                           double tolerance,
                           std::vector<ScorePartials>* blocks) {
    size_t begin = 0;
    while (begin < rows.size()) {
      int64_t block = rows[begin] / block_rows;
      size_t end = begin;
      while (end < rows.size() && rows[end] / block_rows == block) ++end;
      std::vector<int64_t> block_row_ids(rows.begin() + begin, rows.begin() + end);
      std::vector<double> block_y(y.begin() + begin, y.begin() + end);
      std::vector<double> block_hat(y_hat.begin() + begin, y_hat.begin() + end);
      blocks->push_back(AccumulateScoreDiffBlocks(block_y, block_hat,
                                                  block_row_ids, block_rows,
                                                  tolerance));
      begin = end;
    }
  };
  for (uint64_t seed = 0; seed < 50; ++seed) {
    std::mt19937_64 rng(seed * 1709 + 13);
    int64_t n = 64 + static_cast<int64_t>(rng() % 600);
    int64_t block_rows = 1 + static_cast<int64_t>(rng() % 100);
    std::vector<int64_t> rows = MakeRows(n, (rng() % 2) == 0, rng);
    std::vector<double> y = AdversarialColumn(static_cast<int64_t>(rows.size()), rng);
    std::vector<double> y_hat =
        AdversarialColumn(static_cast<int64_t>(rows.size()), rng);
    double tolerance = std::pow(10.0, static_cast<int>(rng() % 21) - 10);
    ScorePartials whole =
        AccumulateScoreDiffBlocks(y, y_hat, rows, block_rows, tolerance);

    int64_t boundary_row =
        block_rows * (1 + static_cast<int64_t>(
                              rng() % static_cast<uint64_t>(n / block_rows + 1)));
    size_t split = 0;
    while (split < rows.size() && rows[split] < boundary_row) ++split;
    std::vector<int64_t> left_rows(rows.begin(), rows.begin() + split);
    std::vector<int64_t> right_rows(rows.begin() + split, rows.end());
    std::vector<double> left_y(y.begin(), y.begin() + split);
    std::vector<double> right_y(y.begin() + split, y.end());
    std::vector<double> left_hat(y_hat.begin(), y_hat.begin() + split);
    std::vector<double> right_hat(y_hat.begin() + split, y_hat.end());

    // Two "shards", each emitting per-block partials; the boundary is
    // block-aligned so every block lives wholly on one side.
    std::vector<ScorePartials> blocks;
    fold_per_block(left_y, left_hat, left_rows, block_rows, tolerance, &blocks);
    fold_per_block(right_y, right_hat, right_rows, block_rows, tolerance, &blocks);
    ScorePartials merged;
    for (const ScorePartials& block : blocks) merged.Merge(block);
    EXPECT_TRUE(merged.BitIdenticalTo(whole))
        << "seed " << seed << " boundary " << boundary_row;
  }
}

TEST(ScorePartialsTest, TailBlockShorterThanBlockSizeFoldsExactly) {
  // 100 rows at block 64: a full block plus a 36-row tail. The tail must be
  // folded as its own partial, not padded or skipped.
  std::vector<int64_t> rows;
  for (int64_t r = 0; r < 100; ++r) rows.push_back(r);
  std::vector<double> y(100, 1.0), y_hat(100, 1.25);
  ScorePartials fold = AccumulateScoreDiffBlocks(y, y_hat, rows, 64, 0.5);
  EXPECT_EQ(fold.n, 100);
  EXPECT_EQ(fold.exact_count, 100);
  ScorePartials scan;
  for (size_t i = 0; i < y.size(); ++i) scan.Accumulate(y[i], y_hat[i], 0.5);
  EXPECT_EQ(fold.exact_count, scan.exact_count);
  EXPECT_EQ(fold.n, scan.n);
}

// --- Wire format -------------------------------------------------------------

TEST(ScorePartialsWireTest, RoundTripIsBitExact) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 20; ++i) {
    ScorePartials original;
    original.abs_error_sum = AdversarialValue(rng);
    original.n = static_cast<int64_t>(rng() % 10000);
    original.exact_count = original.n > 0
                               ? static_cast<int64_t>(rng() % static_cast<uint64_t>(
                                     original.n + 1))
                               : 0;
    std::string wire;
    original.SerializeTo(&wire);
    const unsigned char* cursor =
        reinterpret_cast<const unsigned char*>(wire.data());
    const unsigned char* end = cursor + wire.size();
    ScorePartials back = ScorePartials::Deserialize(&cursor, end).ValueOrDie();
    EXPECT_TRUE(back.BitIdenticalTo(original)) << "case " << i;
    EXPECT_EQ(cursor, end) << "case " << i;
  }
}

TEST(ScorePartialsWireTest, EveryStrictPrefixRejected) {
  ScorePartials partials;
  partials.Accumulate(3.0, 4.5, 1.0);
  std::string wire;
  partials.SerializeTo(&wire);
  for (size_t len = 0; len < wire.size(); ++len) {
    const unsigned char* cursor =
        reinterpret_cast<const unsigned char*>(wire.data());
    EXPECT_TRUE(ScorePartials::Deserialize(&cursor, cursor + len)
                    .status()
                    .IsIOError())
        << "prefix " << len;
  }
}

TEST(ScorePartialsWireTest, ImpossibleTalliesRejected) {
  // A count outside [0, n] (or a negative n) cannot come from any fold; a
  // frame claiming one is hostile or torn and must not merge.
  ScorePartials partials;
  partials.Accumulate(1.0, 1.0, 0.5);
  auto corrupt = [&](int64_t exact_count, int64_t n) {
    ScorePartials bad = partials;
    bad.exact_count = exact_count;
    bad.n = n;
    std::string wire;
    bad.SerializeTo(&wire);
    const unsigned char* cursor =
        reinterpret_cast<const unsigned char*>(wire.data());
    return ScorePartials::Deserialize(&cursor, cursor + wire.size()).status();
  };
  EXPECT_TRUE(corrupt(/*exact_count=*/2, /*n=*/1).IsIOError());
  EXPECT_TRUE(corrupt(/*exact_count=*/-1, /*n=*/1).IsIOError());
  EXPECT_TRUE(corrupt(/*exact_count=*/0, /*n=*/-5).IsIOError());
}

// --- Scorer integration ------------------------------------------------------

CharlesOptions ScorerOptions() {
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  return options;
}

TEST(ScorePartialsScorerTest, AccuracyFromPartialsMatchesRowScanBitwise) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    std::mt19937_64 rng(seed * 31 + 1);
    int64_t n = 1 + static_cast<int64_t>(rng() % 300);
    std::vector<double> y_old = AdversarialColumn(n, rng);
    std::vector<double> y_new = AdversarialColumn(n, rng);
    std::vector<double> y_hat = AdversarialColumn(n, rng);
    Scorer scorer(ScorerOptions(), y_old, y_new);
    // Fold with the scorer's own band and a single chain — the contract
    // every engine-side fold follows.
    ScorePartials partials;
    std::vector<int64_t> rows;
    for (int64_t r = 0; r < n; ++r) rows.push_back(r);
    partials = AccumulateScoreDiffBlocks(y_new, y_hat, rows, n + 1,
                                         scorer.exact_tolerance());
    double scan = scorer.Accuracy(y_hat);
    double from_partials = scorer.AccuracyFromPartials(partials);
    EXPECT_EQ(std::memcmp(&scan, &from_partials, sizeof(double)), 0)
        << "seed " << seed;
  }
}

TEST(ScorePartialsScorerTest, ExactToleranceIsTheScorerBand) {
  // band = max(numeric_tolerance, 0.1% of mean |y_new|): both regimes.
  std::vector<double> y_old = {0.0, 0.0};
  Scorer small(ScorerOptions(), y_old, {1e-9, 1e-9});
  CharlesOptions options = ScorerOptions();
  EXPECT_DOUBLE_EQ(small.exact_tolerance(), options.numeric_tolerance);
  Scorer large(ScorerOptions(), y_old, {2000.0, 2000.0});
  EXPECT_DOUBLE_EQ(large.exact_tolerance(), 2.0);  // 0.1% of mean |y_new|
  EXPECT_EQ(large.num_rows(), 2);
}

}  // namespace
}  // namespace charles
