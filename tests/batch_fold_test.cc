/// \file
/// Batched block folds (ISSUE 8): BlockStager pool behaviour (cap, high
/// water, cross-task reuse), batched-vs-per-leaf ExecuteShardTaskKernel bit
/// parity for all three task kinds, counter propagation through the
/// coordinator merge and the CST1 wire (subprocess workers), and the
/// process-wide batch-fold mode seam.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "distributed/coordinator.h"
#include "distributed/in_process_backend.h"
#include "distributed/shard_planner.h"
#include "distributed/subprocess_backend.h"
#include "linalg/batch_fold.h"
#include "linalg/kernels/block_stage.h"
#include "table/table_builder.h"

namespace charles {
namespace {

using kernels::BatchFoldMode;
using kernels::BlockStager;

/// Restores the prior process-wide batch-fold mode on scope exit, so these
/// tests cannot leak a mode into the rest of the suite.
class ScopedBatchFold {
 public:
  explicit ScopedBatchFold(BatchFoldMode mode)
      : previous_(kernels::SetActiveBatchFold(mode)) {}
  ~ScopedBatchFold() { kernels::SetActiveBatchFold(previous_); }

 private:
  BatchFoldMode previous_;
};

/// Deterministic synthetic shard input (the distributed_test fixture): two
/// feature columns, y vectors, and leaves with distinct shapes.
struct SyntheticInput {
  std::vector<std::string> shortlist;
  ColumnCache columns;
  std::vector<double> y_old;
  std::vector<double> y_new;
  std::vector<RowSet> leaf_storage;
  ShardInput input;
};

SyntheticInput MakeSyntheticInput(int64_t rows) {
  SyntheticInput s;
  s.shortlist = {"a", "b"};
  std::vector<double> a(static_cast<size_t>(rows)), b(static_cast<size_t>(rows));
  s.y_old.resize(static_cast<size_t>(rows));
  s.y_new.resize(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    size_t i = static_cast<size_t>(r);
    a[i] = 1000.0 + 3.0 * static_cast<double>(r);
    b[i] = 50.0 - 0.25 * static_cast<double>(r % 97);
    s.y_old[i] = 10.0 + 0.5 * a[i];
    s.y_new[i] = (r % 3 == 0) ? s.y_old[i] : 1.05 * s.y_old[i] + 2.0 * b[i];
  }
  Schema schema = Schema::Make({Field{"a", TypeKind::kDouble, false},
                                Field{"b", TypeKind::kDouble, false}})
                      .ValueOrDie();
  TableBuilder builder(schema);
  for (int64_t r = 0; r < rows; ++r) {
    size_t i = static_cast<size_t>(r);
    builder.AppendRow({Value(a[i]), Value(b[i])}).AbortIfNotOk();
  }
  Table table = builder.Finish().ValueOrDie();
  s.columns = ColumnCache::Build(table, s.shortlist).ValueOrDie();

  std::vector<int64_t> stride, prefix;
  for (int64_t r = 0; r < rows; r += 3) stride.push_back(r);
  for (int64_t r = 0; r < rows / 2; ++r) prefix.push_back(r);
  s.leaf_storage.push_back(RowSet::All(rows));
  s.leaf_storage.push_back(RowSet(std::move(stride)));
  s.leaf_storage.push_back(RowSet(std::move(prefix)));

  s.input.shortlist = &s.shortlist;
  s.input.columns = &s.columns;
  s.input.y_old = &s.y_old;
  s.input.y_new = &s.y_new;
  for (const RowSet& leaf : s.leaf_storage) s.input.leaves.push_back(&leaf);
  return s;
}

ShardTask MakeMomentsTask(const ShardInput& input) {
  ShardTask task;
  task.kind = ShardTaskKind::kLeafMoments;
  for (size_t l = 0; l < input.leaves.size(); ++l) {
    task.leaves.push_back(static_cast<int64_t>(l));
  }
  return task;
}

ShardTask MakeSignalTask() {
  ShardTask task;
  task.kind = ShardTaskKind::kSignalStats;
  return task;
}

ShardTask MakeErrorTask() {
  ShardTask task;
  task.kind = ShardTaskKind::kErrorPartials;
  ErrorProbe p0;
  p0.leaf = 0;
  p0.features = {0};
  p0.intercept = 12.5;
  p0.coefficients = {1.05};
  task.probes.push_back(p0);
  ErrorProbe p1;
  p1.leaf = 1;
  p1.features = {0, 1};
  p1.intercept = -3.0;
  p1.coefficients = {0.5, 2.0};
  task.probes.push_back(p1);
  return task;
}

/// The canonical payloads of two task results must match byte for byte —
/// the batch counters are deliberately excluded (they are the one sanctioned
/// difference between the batched and per-leaf paths).
void ExpectBitIdenticalPayloads(const ShardTaskResult& a,
                                const ShardTaskResult& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.shard, b.shard);
  EXPECT_EQ(a.rows_scanned, b.rows_scanned);
  EXPECT_EQ(a.blocks_emitted, b.blocks_emitted);
  ASSERT_EQ(a.leaves.size(), b.leaves.size());
  for (size_t l = 0; l < a.leaves.size(); ++l) {
    EXPECT_EQ(a.leaves[l].leaf, b.leaves[l].leaf);
    EXPECT_EQ(std::memcmp(&a.leaves[l].max_abs_delta,
                          &b.leaves[l].max_abs_delta, sizeof(double)),
              0);
    ASSERT_EQ(a.leaves[l].blocks.size(), b.leaves[l].blocks.size());
    for (size_t i = 0; i < a.leaves[l].blocks.size(); ++i) {
      EXPECT_EQ(a.leaves[l].blocks[i].first, b.leaves[l].blocks[i].first);
      EXPECT_TRUE(a.leaves[l].blocks[i].second.BitIdenticalTo(
          b.leaves[l].blocks[i].second));
    }
  }
  ASSERT_EQ(a.signal_blocks.size(), b.signal_blocks.size());
  for (size_t i = 0; i < a.signal_blocks.size(); ++i) {
    EXPECT_EQ(a.signal_blocks[i].first, b.signal_blocks[i].first);
    EXPECT_TRUE(
        a.signal_blocks[i].second.BitIdenticalTo(b.signal_blocks[i].second));
  }
  EXPECT_EQ(std::memcmp(&a.signal_max_abs_delta, &b.signal_max_abs_delta,
                        sizeof(double)),
            0);
  EXPECT_EQ(a.signal_rows_changed, b.signal_rows_changed);
  ASSERT_EQ(a.probes.size(), b.probes.size());
  for (size_t p = 0; p < a.probes.size(); ++p) {
    EXPECT_EQ(a.probes[p].probe, b.probes[p].probe);
    ASSERT_EQ(a.probes[p].blocks.size(), b.probes[p].blocks.size());
    for (size_t i = 0; i < a.probes[p].blocks.size(); ++i) {
      EXPECT_EQ(a.probes[p].blocks[i].first, b.probes[p].blocks[i].first);
      EXPECT_TRUE(a.probes[p].blocks[i].second.BitIdenticalTo(
          b.probes[p].blocks[i].second));
    }
  }
}

// --- BlockStager pool --------------------------------------------------------

TEST(BatchFoldTest, StagerTracksHighWaterAndBlocks) {
  std::vector<double> col_a(256, 1.5), col_b(256, -2.0), y(256, 3.0);
  std::vector<const std::vector<double>*> columns = {&col_a, &col_b};
  BlockStager stager;
  stager.Stage(columns, &y, 0, 64);    // 3 × 64 doubles
  stager.Stage(columns, &y, 64, 128);  // 3 × 128 doubles — new high water
  stager.Stage(columns, &y, 192, 32);  // smaller; high water must stand
  EXPECT_EQ(stager.blocks_staged(), 3);
  EXPECT_EQ(stager.high_water_doubles(), 3 * 128);
  EXPECT_GE(stager.resident_doubles(), 3 * 32);
}

TEST(BatchFoldTest, StagerCapBoundsResidentMemory) {
  // The pool-cap regression (ISSUE 8 satellite): one wide column set may
  // exceed the cap while it is being staged — staging must not fail — but
  // the over-cap buffer is released before the next under-cap block, so a
  // single wide task cannot permanently balloon a worker's resident pool.
  const int64_t rows = 512;
  std::vector<std::vector<double>> storage(7, std::vector<double>(rows, 1.0));
  std::vector<const std::vector<double>*> wide;
  for (const auto& col : storage) wide.push_back(&col);
  std::vector<const std::vector<double>*> narrow = {wide[0]};
  std::vector<double> y(rows, 2.0);

  BlockStager stager(/*cap_doubles=*/1024);
  // (7 + 1) × 512 = 4096 doubles: four times over the cap, still staged.
  kernels::StagedBlock over = stager.Stage(wide, &y, 0, rows);
  EXPECT_EQ(over.count, rows);
  EXPECT_EQ(stager.high_water_doubles(), 4096);
  EXPECT_GE(stager.resident_doubles(), 4096);
  // The next under-cap block shrinks the pool back under the cap first.
  stager.Stage(narrow, &y, 0, rows);  // 2 × 512 = 1024 ≤ cap
  EXPECT_LE(stager.resident_doubles(), 1024);
  EXPECT_EQ(stager.high_water_doubles(), 4096);  // high water is sticky
}

TEST(BatchFoldTest, ThreadLocalStagerReusedAcrossTasks) {
  // The staging pool lives on the worker thread, not the task: two identical
  // batched task executions must not grow the pool past the first one's high
  // water (the buffers are reused, not re-allocated per RunTask call).
  ScopedBatchFold scoped(BatchFoldMode::kOn);
  SyntheticInput s = MakeSyntheticInput(600);
  ShardPlan plan = PlanShards(600, 64, 1);
  ShardTask task = MakeMomentsTask(s.input);

  BlockStager& pool = BlockStager::ThreadLocal();
  ASSERT_TRUE(ExecuteShardTaskKernel(s.input, plan, 0, task).ok());
  const int64_t blocks_after_first = pool.blocks_staged();
  const int64_t high_water_after_first = pool.high_water_doubles();
  EXPECT_GT(blocks_after_first, 0);
  ASSERT_TRUE(ExecuteShardTaskKernel(s.input, plan, 0, task).ok());
  EXPECT_GT(pool.blocks_staged(), blocks_after_first);
  EXPECT_EQ(pool.high_water_doubles(), high_water_after_first);
}

// --- Batched vs per-leaf kernel parity ---------------------------------------

TEST(BatchFoldTest, BatchedTaskKernelBitIdenticalForAllThreeKinds) {
  SyntheticInput s = MakeSyntheticInput(777);
  ShardPlan plan = PlanShards(777, 64, 3);
  for (const ShardTask& task :
       {MakeMomentsTask(s.input), MakeSignalTask(), MakeErrorTask()}) {
    for (int64_t shard = 0; shard < plan.num_shards(); ++shard) {
      ShardTaskResult per_leaf = [&] {
        ScopedBatchFold scoped(BatchFoldMode::kOff);
        return ExecuteShardTaskKernel(s.input, plan, shard, task).ValueOrDie();
      }();
      ShardTaskResult batched = [&] {
        ScopedBatchFold scoped(BatchFoldMode::kOn);
        return ExecuteShardTaskKernel(s.input, plan, shard, task).ValueOrDie();
      }();
      EXPECT_EQ(per_leaf.batch_blocks_staged, 0);
      EXPECT_GT(batched.batch_blocks_staged, 0)
          << ShardTaskKindName(task.kind) << " shard " << shard;
      EXPECT_GT(batched.batch_accumulators_folded, 0);
      ExpectBitIdenticalPayloads(per_leaf, batched);
    }
  }
}

TEST(BatchFoldTest, AutoBatchesMultiAccumulatorTasksOnly) {
  SyntheticInput s = MakeSyntheticInput(300);
  ShardPlan plan = PlanShards(300, 64, 1);
  ScopedBatchFold scoped(BatchFoldMode::kAuto);
  // Three leaves → batched under auto.
  ShardTaskResult moments =
      ExecuteShardTaskKernel(s.input, plan, 0, MakeMomentsTask(s.input))
          .ValueOrDie();
  EXPECT_GT(moments.batch_blocks_staged, 0);
  // One leaf → per-leaf path under auto (nothing to share staging with).
  ShardTask single;
  single.kind = ShardTaskKind::kLeafMoments;
  single.leaves = {0};
  ShardTaskResult one =
      ExecuteShardTaskKernel(s.input, plan, 0, single).ValueOrDie();
  EXPECT_EQ(one.batch_blocks_staged, 0);
  // Signal stats is a single accumulator → per-leaf path under auto.
  ShardTaskResult signal =
      ExecuteShardTaskKernel(s.input, plan, 0, MakeSignalTask()).ValueOrDie();
  EXPECT_EQ(signal.batch_blocks_staged, 0);
}

// --- Counters through the coordinator merge and the CST1 wire ----------------

TEST(BatchFoldTest, CoordinatorFoldsCountersAndSubprocessShipsThem) {
  SyntheticInput s = MakeSyntheticInput(900);
  ShardPlan plan = PlanShards(900, 64, 4);
  ShardTask task = MakeMomentsTask(s.input);

  CoordinatorTaskResult reference = [&] {
    ScopedBatchFold scoped(BatchFoldMode::kOff);
    InProcessBackend backend;
    return Coordinator::RunTask(s.input, plan, &backend, nullptr, task)
        .ValueOrDie();
  }();
  EXPECT_EQ(reference.batch_blocks_staged, 0);

  ScopedBatchFold scoped(BatchFoldMode::kOn);
  InProcessBackend in_process;
  SubprocessBackend subprocess;
  for (ShardBackend* backend :
       std::vector<ShardBackend*>{&in_process, &subprocess}) {
    CoordinatorTaskResult merged =
        Coordinator::RunTask(s.input, plan, backend, nullptr, task)
            .ValueOrDie();
    // Counters fold across shards — and, for the subprocess backend, ride
    // the CST1 wire from the forked workers.
    EXPECT_GT(merged.batch_blocks_staged, 0) << backend->name();
    EXPECT_GT(merged.batch_accumulators_folded, 0) << backend->name();
    EXPECT_GT(merged.batch_max_accumulators_per_block, 0) << backend->name();
    EXPECT_LE(merged.batch_max_accumulators_per_block,
              static_cast<int64_t>(task.leaves.size()));
    // The merged canonical payload is unchanged by batching.
    ASSERT_EQ(merged.leaves.size(), reference.leaves.size());
    for (size_t l = 0; l < merged.leaves.size(); ++l) {
      EXPECT_TRUE(
          merged.leaves[l].stats.BitIdenticalTo(reference.leaves[l].stats))
          << backend->name() << " leaf " << l;
      EXPECT_EQ(std::memcmp(&merged.leaves[l].max_abs_delta,
                            &reference.leaves[l].max_abs_delta, sizeof(double)),
                0);
    }
  }
}

TEST(BatchFoldTest, TaskResultWireCarriesBatchCounters) {
  ScopedBatchFold scoped(BatchFoldMode::kOn);
  SyntheticInput s = MakeSyntheticInput(500);
  ShardPlan plan = PlanShards(500, 64, 2);
  ShardTaskResult result =
      ExecuteShardTaskKernel(s.input, plan, 0, MakeMomentsTask(s.input))
          .ValueOrDie();
  ASSERT_GT(result.batch_blocks_staged, 0);
  std::string wire;
  result.SerializeTo(&wire);
  ShardTaskResult back =
      ShardTaskResult::Deserialize(wire.data(), wire.size()).ValueOrDie();
  EXPECT_EQ(back.batch_blocks_staged, result.batch_blocks_staged);
  EXPECT_EQ(back.batch_accumulators_folded, result.batch_accumulators_folded);
  EXPECT_EQ(back.batch_max_accumulators_per_block,
            result.batch_max_accumulators_per_block);
  ExpectBitIdenticalPayloads(result, back);
}

}  // namespace
}  // namespace charles
