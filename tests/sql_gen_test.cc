#include "core/sql_gen.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workload/example1.h"

namespace charles {
namespace {

ChangeSummary Example1TopSummary() {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
  return result.summaries[0];
}

ChangeSummary HandBuiltSummary() {
  LinearModel model;
  model.feature_names = {"bonus"};
  model.coefficients = {1.05};
  model.intercept = 1000;
  ConditionalTransform phd;
  phd.condition = MakeColumnCompare("edu", CompareOp::kEq, Value("PhD"));
  phd.transform = LinearTransform::Linear("bonus", std::move(model));
  ConditionalTransform rest;
  rest.condition = MakeColumnCompare("edu", CompareOp::kNe, Value("PhD"));
  rest.transform = LinearTransform::NoChange("bonus");
  return ChangeSummary({std::move(phd), std::move(rest)}, "bonus");
}

TEST(SqlGenTest, SingleStatementCaseForm) {
  SqlGenOptions options;
  options.table_name = "salaries";
  std::string sql = ToSqlUpdate(HandBuiltSummary(), options).ValueOrDie();
  EXPECT_EQ(sql,
            "UPDATE salaries SET bonus = CASE\n"
            "  WHEN edu = 'PhD' THEN 1.05 * bonus + 1000\n"
            "  WHEN edu != 'PhD' THEN bonus\n"
            "  ELSE bonus\nEND;\n");
}

TEST(SqlGenTest, PerStatementForm) {
  SqlGenOptions options;
  options.table_name = "salaries";
  options.single_statement = false;
  std::string sql = ToSqlUpdate(HandBuiltSummary(), options).ValueOrDie();
  EXPECT_NE(sql.find("UPDATE salaries SET bonus = 1.05 * bonus + 1000 "
                     "WHERE edu = 'PhD';"),
            std::string::npos);
  // No-change partitions become comments, not UPDATEs.
  EXPECT_NE(sql.find("-- edu != 'PhD': no change"), std::string::npos);
}

TEST(SqlGenTest, EngineSummaryRendersAndMentionsEveryCondition) {
  ChangeSummary summary = Example1TopSummary();
  std::string sql = ToSqlUpdate(summary).ValueOrDie();
  for (const ConditionalTransform& ct : summary.cts()) {
    EXPECT_NE(sql.find(ct.condition->ToString()), std::string::npos)
        << "missing condition: " << ct.condition->ToString();
  }
  EXPECT_NE(sql.find("UPDATE snapshot SET bonus = CASE"), std::string::npos);
}

TEST(SqlGenTest, QuotesAwkwardIdentifiers) {
  LinearModel model;
  model.feature_names = {"base salary"};
  model.coefficients = {1.02};
  ConditionalTransform ct;
  ct.condition = MakeTrue();
  ct.transform = LinearTransform::Linear("base salary", std::move(model));
  ChangeSummary summary({std::move(ct)}, "base salary");
  SqlGenOptions options;
  options.table_name = "pay roll";
  std::string sql = ToSqlUpdate(summary, options).ValueOrDie();
  EXPECT_NE(sql.find("UPDATE \"pay roll\" SET \"base salary\""), std::string::npos);
  EXPECT_NE(sql.find("1.02 * \"base salary\""), std::string::npos);
}

TEST(SqlGenTest, NegativeCoefficientsAndConstants) {
  LinearModel model;
  model.feature_names = {"x"};
  model.coefficients = {-0.5};
  model.intercept = -20;
  ConditionalTransform ct;
  ct.condition = MakeTrue();
  ct.transform = LinearTransform::Linear("y", std::move(model));
  ChangeSummary summary({std::move(ct)}, "y");
  std::string sql = ToSqlUpdate(summary).ValueOrDie();
  EXPECT_NE(sql.find("THEN -0.5 * x - 20"), std::string::npos) << sql;
}

TEST(SqlGenTest, ConstantRule) {
  LinearModel model;
  model.intercept = 13790;
  ConditionalTransform ct;
  ct.condition = MakeTrue();
  ct.transform = LinearTransform::Linear("bonus", std::move(model));
  ChangeSummary summary({std::move(ct)}, "bonus");
  std::string sql = ToSqlUpdate(summary).ValueOrDie();
  EXPECT_NE(sql.find("THEN 13790"), std::string::npos);
}

TEST(SqlGenTest, ErrorsOnEmptySummaryOrTable) {
  EXPECT_TRUE(ToSqlUpdate(ChangeSummary({}, "x")).status().IsInvalidArgument());
  SqlGenOptions options;
  options.table_name = "";
  EXPECT_TRUE(ToSqlUpdate(HandBuiltSummary(), options).status().IsInvalidArgument());
}

}  // namespace
}  // namespace charles
