#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include "table/table_builder.h"

namespace charles {
namespace {

Table EmployeeTable() {
  Schema schema = Schema::Make({
                                   Field{"edu", TypeKind::kString, true},
                                   Field{"exp", TypeKind::kInt64, true},
                                   Field{"salary", TypeKind::kDouble, true},
                               })
                      .ValueOrDie();
  TableBuilder builder(schema);
  // Mirrors Example 1's structure: PhD / MS-senior / MS-junior / BS.
  CHARLES_CHECK_OK(builder.AppendRow({Value("PhD"), Value(2), Value(230000.0)}));
  CHARLES_CHECK_OK(builder.AppendRow({Value("PhD"), Value(3), Value(250000.0)}));
  CHARLES_CHECK_OK(builder.AppendRow({Value("MS"), Value(5), Value(160000.0)}));
  CHARLES_CHECK_OK(builder.AppendRow({Value("MS"), Value(1), Value(130000.0)}));
  CHARLES_CHECK_OK(builder.AppendRow({Value("BS"), Value(2), Value(110000.0)}));
  CHARLES_CHECK_OK(builder.AppendRow({Value("MS"), Value(4), Value(150000.0)}));
  CHARLES_CHECK_OK(builder.AppendRow({Value("BS"), Value(3), Value(120000.0)}));
  CHARLES_CHECK_OK(builder.AppendRow({Value("MS"), Value(4), Value(150000.0)}));
  CHARLES_CHECK_OK(builder.AppendRow({Value("PhD"), Value(1), Value(210000.0)}));
  return builder.Finish().ValueOrDie();
}

TEST(DecisionTreeTest, PureLabelsYieldSingleLeaf) {
  Table t = EmployeeTable();
  std::vector<int> labels(9, 0);
  DecisionTree tree = DecisionTree::Fit(t, RowSet::All(9), {0, 1}, labels).ValueOrDie();
  EXPECT_EQ(tree.num_leaves(), 1);
  EXPECT_EQ(tree.depth(), 0);
  auto leaves = tree.Leaves();
  ASSERT_EQ(leaves.size(), 1u);
  EXPECT_TRUE(leaves[0].condition->Equals(*MakeTrue()));
  EXPECT_EQ(leaves[0].rows.size(), 9);
  EXPECT_DOUBLE_EQ(tree.training_accuracy(), 1.0);
}

TEST(DecisionTreeTest, SeparatesByCategoricalAttribute) {
  Table t = EmployeeTable();
  // Label = 1 for PhD rows (0, 1, 8).
  std::vector<int> labels = {1, 1, 0, 0, 0, 0, 0, 0, 1};
  DecisionTree tree = DecisionTree::Fit(t, RowSet::All(9), {0}, labels).ValueOrDie();
  EXPECT_EQ(tree.num_leaves(), 2);
  EXPECT_DOUBLE_EQ(tree.training_accuracy(), 1.0);
  auto leaves = tree.Leaves();
  // One leaf must be exactly the PhD rows.
  bool found = false;
  for (const auto& leaf : leaves) {
    if (leaf.rows == RowSet({0, 1, 8})) {
      found = true;
      EXPECT_EQ(leaf.condition->ToString(), "edu = 'PhD'");
      EXPECT_EQ(leaf.majority_label, 1);
    }
  }
  EXPECT_TRUE(found);
}

TEST(DecisionTreeTest, NumericThresholdSplit) {
  Table t = EmployeeTable();
  // Label by experience >= 4 (rows 2, 5, 7).
  std::vector<int> labels = {0, 0, 1, 0, 0, 1, 0, 1, 0};
  DecisionTree tree = DecisionTree::Fit(t, RowSet::All(9), {1}, labels).ValueOrDie();
  EXPECT_DOUBLE_EQ(tree.training_accuracy(), 1.0);
  auto leaves = tree.Leaves();
  ASSERT_EQ(leaves.size(), 2u);
  // The threshold must cleanly separate exp<=3 from exp>=4: any t in (3,4].
  for (const auto& leaf : leaves) {
    if (leaf.majority_label == 1) {
      EXPECT_EQ(leaf.rows, RowSet({2, 5, 7}));
      EXPECT_EQ(leaf.condition->ToString(), "exp >= 4");
    }
  }
}

TEST(DecisionTreeTest, Example1StructureRecovered) {
  Table t = EmployeeTable();
  // Labels: PhD=0, MS&exp>=3=1, MS&exp<3=2, BS=3 (the paper's four groups).
  std::vector<int> labels = {0, 0, 1, 2, 3, 1, 3, 1, 0};
  DecisionTree tree = DecisionTree::Fit(t, RowSet::All(9), {0, 1}, labels).ValueOrDie();
  EXPECT_EQ(tree.num_leaves(), 4);
  EXPECT_DOUBLE_EQ(tree.training_accuracy(), 1.0);
  // Partition row sets must match the planted groups exactly.
  std::vector<RowSet> expected = {RowSet({0, 1, 8}), RowSet({2, 5, 7}), RowSet({3}),
                                  RowSet({4, 6})};
  auto leaves = tree.Leaves();
  for (const RowSet& group : expected) {
    bool found = false;
    for (const auto& leaf : leaves) {
      if (leaf.rows == group) found = true;
    }
    EXPECT_TRUE(found) << "missing partition " << group.ToString();
  }
}

TEST(DecisionTreeTest, PathConditionsAreSimplified) {
  Table t = EmployeeTable();
  // Force two numeric splits on the same column: labels by exp bands
  // {<2}, {2..3}, {>=4}.
  std::vector<int> labels = {1, 1, 2, 0, 1, 2, 1, 2, 0};
  DecisionTreeOptions options;
  options.max_depth = 3;
  DecisionTree tree = DecisionTree::Fit(t, RowSet::All(9), {1}, labels, options).ValueOrDie();
  EXPECT_DOUBLE_EQ(tree.training_accuracy(), 1.0);
  for (const auto& leaf : tree.Leaves()) {
    // A simplified band condition never repeats a bound direction: at most
    // one `<` and one `>=` per column, so at most 2 descriptors here.
    EXPECT_LE(leaf.condition->NumDescriptors(), 2) << leaf.condition->ToString();
  }
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  Table t = EmployeeTable();
  std::vector<int> labels = {0, 0, 1, 2, 3, 1, 3, 1, 0};
  DecisionTreeOptions options;
  options.max_depth = 1;
  DecisionTree tree = DecisionTree::Fit(t, RowSet::All(9), {0, 1}, labels, options).ValueOrDie();
  EXPECT_LE(tree.depth(), 1);
  EXPECT_LE(tree.num_leaves(), 2);
  EXPECT_LT(tree.training_accuracy(), 1.0);  // 4 classes cannot fit in 2 leaves
}

TEST(DecisionTreeTest, RespectsMinLeafSize) {
  Table t = EmployeeTable();
  std::vector<int> labels = {0, 0, 1, 2, 3, 1, 3, 1, 0};
  DecisionTreeOptions options;
  options.min_leaf_size = 3;
  DecisionTree tree = DecisionTree::Fit(t, RowSet::All(9), {0, 1}, labels, options).ValueOrDie();
  for (const auto& leaf : tree.Leaves()) {
    EXPECT_GE(leaf.rows.size(), 3);
  }
}

TEST(DecisionTreeTest, PredictRowFollowsPath) {
  Table t = EmployeeTable();
  std::vector<int> labels = {1, 1, 0, 0, 0, 0, 0, 0, 1};
  DecisionTree tree = DecisionTree::Fit(t, RowSet::All(9), {0}, labels).ValueOrDie();
  for (int64_t row = 0; row < 9; ++row) {
    EXPECT_EQ(*tree.PredictRow(t, row), labels[static_cast<size_t>(row)]);
  }
}

TEST(DecisionTreeTest, LeavesPartitionTrainingRows) {
  Table t = EmployeeTable();
  std::vector<int> labels = {0, 1, 2, 0, 1, 2, 0, 1, 2};  // noisy labels
  DecisionTree tree =
      DecisionTree::Fit(t, RowSet::All(9), {0, 1, 2}, labels).ValueOrDie();
  RowSet all_leaf_rows;
  int64_t total = 0;
  for (const auto& leaf : tree.Leaves()) {
    all_leaf_rows = all_leaf_rows.Union(leaf.rows);
    total += leaf.rows.size();
  }
  EXPECT_EQ(all_leaf_rows, RowSet::All(9));  // cover
  EXPECT_EQ(total, 9);                       // disjoint
}

TEST(DecisionTreeTest, InputValidation) {
  Table t = EmployeeTable();
  std::vector<int> labels(9, 0);
  EXPECT_TRUE(
      DecisionTree::Fit(t, RowSet(), {0}, labels).status().IsInvalidArgument());
  EXPECT_TRUE(DecisionTree::Fit(t, RowSet::All(9), {0}, {0, 1})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      DecisionTree::Fit(t, RowSet::All(9), {99}, labels).status().IsOutOfRange());
}

TEST(DecisionTreeTest, ConditionsEvaluateToTheirPartitions) {
  // Property: filtering the table by each leaf's condition reproduces the
  // leaf's training rows (conditions are faithful descriptions).
  Table t = EmployeeTable();
  std::vector<int> labels = {0, 0, 1, 2, 3, 1, 3, 1, 0};
  DecisionTree tree = DecisionTree::Fit(t, RowSet::All(9), {0, 1}, labels).ValueOrDie();
  for (const auto& leaf : tree.Leaves()) {
    RowSet filtered = FilterRows(t, *leaf.condition).ValueOrDie();
    EXPECT_EQ(filtered, leaf.rows) << leaf.condition->ToString();
  }
}

}  // namespace
}  // namespace charles
