#include "types/schema.h"

#include <gtest/gtest.h>

namespace charles {
namespace {

Schema TestSchema() {
  return Schema::Make({
                          Field{"id", TypeKind::kInt64, false},
                          Field{"name", TypeKind::kString, true},
                          Field{"salary", TypeKind::kDouble, true},
                          Field{"active", TypeKind::kBool, true},
                      })
      .ValueOrDie();
}

TEST(SchemaTest, MakeValidatesAndIndexes) {
  Schema schema = TestSchema();
  EXPECT_EQ(schema.num_fields(), 4);
  EXPECT_EQ(schema.field(0).name, "id");
  EXPECT_EQ(*schema.FieldIndex("salary"), 2);
  EXPECT_TRUE(schema.HasField("active"));
  EXPECT_FALSE(schema.HasField("missing"));
}

TEST(SchemaTest, DuplicateNamesRejected) {
  auto result = Schema::Make({Field{"a", TypeKind::kInt64, true},
                              Field{"a", TypeKind::kDouble, true}});
  EXPECT_TRUE(result.status().IsAlreadyExists());
}

TEST(SchemaTest, EmptyNameRejected) {
  auto result = Schema::Make({Field{"", TypeKind::kInt64, true}});
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(SchemaTest, FieldIndexMissingIsNotFound) {
  EXPECT_TRUE(TestSchema().FieldIndex("nope").status().IsNotFound());
}

TEST(SchemaTest, NumericFieldIndices) {
  EXPECT_EQ(TestSchema().NumericFieldIndices(), (std::vector<int>{0, 2}));
}

TEST(SchemaTest, EqualsComparesFieldByField) {
  EXPECT_TRUE(TestSchema().Equals(TestSchema()));
  Schema other = Schema::Make({Field{"id", TypeKind::kInt64, false}}).ValueOrDie();
  EXPECT_FALSE(TestSchema().Equals(other));
}

TEST(SchemaTest, NullabilityMattersForEquality) {
  Schema a = Schema::Make({Field{"x", TypeKind::kInt64, true}}).ValueOrDie();
  Schema b = Schema::Make({Field{"x", TypeKind::kInt64, false}}).ValueOrDie();
  EXPECT_FALSE(a.Equals(b));
}

TEST(SchemaTest, ToStringListsFields) {
  EXPECT_EQ(TestSchema().ToString(),
            "id: int64 NOT NULL, name: string, salary: double, active: bool");
}

TEST(DataTypeTest, Names) {
  EXPECT_EQ(TypeKindName(TypeKind::kInt64), "int64");
  EXPECT_EQ(TypeKindName(TypeKind::kDouble), "double");
  EXPECT_EQ(TypeKindName(TypeKind::kString), "string");
  EXPECT_EQ(TypeKindName(TypeKind::kBool), "bool");
  EXPECT_EQ(TypeKindName(TypeKind::kNull), "null");
}

TEST(DataTypeTest, NumericPredicateAndPromotion) {
  EXPECT_TRUE(IsNumeric(TypeKind::kInt64));
  EXPECT_TRUE(IsNumeric(TypeKind::kDouble));
  EXPECT_FALSE(IsNumeric(TypeKind::kString));
  EXPECT_FALSE(IsNumeric(TypeKind::kBool));
  EXPECT_EQ(CommonNumericType(TypeKind::kInt64, TypeKind::kInt64), TypeKind::kInt64);
  EXPECT_EQ(CommonNumericType(TypeKind::kInt64, TypeKind::kDouble), TypeKind::kDouble);
  EXPECT_EQ(CommonNumericType(TypeKind::kString, TypeKind::kInt64), TypeKind::kNull);
}

}  // namespace
}  // namespace charles
