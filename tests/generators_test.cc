#include <gtest/gtest.h>

#include <set>

#include "workload/billionaires_gen.h"
#include "workload/employee_gen.h"
#include "workload/example1.h"
#include "workload/montgomery_gen.h"

namespace charles {
namespace {

TEST(Example1Test, MatchesFigure1Exactly) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  EXPECT_EQ(source.num_rows(), 9);
  EXPECT_EQ(target.num_rows(), 9);
  EXPECT_TRUE(source.schema().Equals(target.schema()));
  // Spot-check the cells quoted in the paper.
  EXPECT_EQ(*source.GetValueByName(0, "name"), Value("Anne"));
  EXPECT_EQ(*source.GetValueByName(0, "bonus"), Value(23000.0));
  EXPECT_EQ(*target.GetValueByName(0, "bonus"), Value(25150.0));
  EXPECT_EQ(*source.GetValueByName(4, "bonus"), Value(11000.0));
  EXPECT_EQ(*target.GetValueByName(4, "bonus"), Value(11000.0));  // Cathy unchanged
  // 2016 bonus is a flat 10% of salary.
  for (int64_t r = 0; r < source.num_rows(); ++r) {
    double salary = source.GetValueByName(r, "salary")->AsDouble().ValueOrDie();
    double bonus = source.GetValueByName(r, "bonus")->AsDouble().ValueOrDie();
    EXPECT_NEAR(bonus, 0.1 * salary, 1e-9);
  }
  // Everyone gained one year of experience.
  for (int64_t r = 0; r < source.num_rows(); ++r) {
    EXPECT_EQ(target.GetValueByName(r, "exp")->int64(),
              source.GetValueByName(r, "exp")->int64() + 1);
  }
}

TEST(EmployeeGenTest, RespectsOptionsAndSchema) {
  EmployeeGenOptions options;
  options.num_rows = 500;
  options.num_decoy_numeric = 2;
  options.num_decoy_categorical = 1;
  Table t = GenerateEmployees(options).ValueOrDie();
  EXPECT_EQ(t.num_rows(), 500);
  EXPECT_EQ(t.num_columns(), 7 + 3);
  EXPECT_TRUE(t.schema().HasField("decoy_num_0"));
  EXPECT_TRUE(t.schema().HasField("decoy_cat_0"));
}

TEST(EmployeeGenTest, DeterministicUnderSeed) {
  EmployeeGenOptions options;
  options.num_rows = 100;
  options.seed = 9;
  Table a = GenerateEmployees(options).ValueOrDie();
  Table b = GenerateEmployees(options).ValueOrDie();
  EXPECT_TRUE(a.Equals(b));
  options.seed = 10;
  Table c = GenerateEmployees(options).ValueOrDie();
  EXPECT_FALSE(a.Equals(c));
}

TEST(EmployeeGenTest, BonusIsTenPercentOfSalary) {
  EmployeeGenOptions options;
  options.num_rows = 200;
  Table t = GenerateEmployees(options).ValueOrDie();
  auto salary = *t.ColumnAsDoubles("salary");
  auto bonus = *t.ColumnAsDoubles("bonus");
  for (size_t i = 0; i < salary.size(); ++i) {
    EXPECT_NEAR(bonus[i], 0.1 * salary[i], 0.51);  // bonus rounds to $1
  }
}

TEST(EmployeeGenTest, EducationLevelsPresent) {
  EmployeeGenOptions options;
  options.num_rows = 500;
  Table t = GenerateEmployees(options).ValueOrDie();
  const Column* edu = *t.ColumnByName("edu");
  std::set<std::string> seen;
  for (const Value& v : edu->DistinctValues()) seen.insert(v.str());
  EXPECT_EQ(seen, (std::set<std::string>{"BS", "MS", "PhD"}));
}

TEST(EmployeeGenTest, RejectsNonPositiveRows) {
  EmployeeGenOptions options;
  options.num_rows = 0;
  EXPECT_TRUE(GenerateEmployees(options).status().IsInvalidArgument());
}

TEST(SegmentedPolicyTest, BandsCoverExperienceRange) {
  Policy policy = MakeSegmentedSalaryPolicy(3).ValueOrDie();
  EXPECT_EQ(policy.num_rules(), 3);
  EmployeeGenOptions gen;
  gen.num_rows = 300;
  Table t = GenerateEmployees(gen).ValueOrDie();
  auto rows = policy.RuleRows(t).ValueOrDie();
  int64_t total = 0;
  for (const RowSet& set : rows) total += set.size();
  EXPECT_EQ(total, 300);  // the bands partition everyone
  EXPECT_TRUE(MakeSegmentedSalaryPolicy(1).status().IsOutOfRange());
  EXPECT_TRUE(MakeSegmentedSalaryPolicy(7).status().IsOutOfRange());
}

TEST(MontgomeryGenTest, SchemaMatchesPaperAttributes) {
  MontgomeryGenOptions options;
  options.num_rows = 300;
  Table t = GenerateMontgomery2016(options).ValueOrDie();
  for (const char* field :
       {"employee_id", "department", "department_name", "division", "gender",
        "base_salary", "overtime_pay", "longevity_pay", "grade"}) {
    EXPECT_TRUE(t.schema().HasField(field)) << field;
  }
  EXPECT_EQ(t.num_rows(), 300);
}

TEST(MontgomeryGenTest, PolicyChangesOnlyBaseSalary) {
  MontgomeryGenOptions options;
  options.num_rows = 400;
  Table source = GenerateMontgomery2016(options).ValueOrDie();
  Table target = GenerateMontgomery2017(source).ValueOrDie();
  auto src_ot = *source.ColumnAsDoubles("overtime_pay");
  auto tgt_ot = *target.ColumnAsDoubles("overtime_pay");
  EXPECT_EQ(src_ot, tgt_ot);
  auto src_salary = *source.ColumnAsDoubles("base_salary");
  auto tgt_salary = *target.ColumnAsDoubles("base_salary");
  int64_t raised = 0;
  for (size_t i = 0; i < src_salary.size(); ++i) {
    EXPECT_GE(tgt_salary[i], src_salary[i]);  // nobody's pay dropped
    if (tgt_salary[i] > src_salary[i]) ++raised;
  }
  EXPECT_EQ(raised, source.num_rows());  // everyone got at least the 2% COLA
}

TEST(MontgomeryGenTest, PublicSafetyGetsLargestRaises) {
  MontgomeryGenOptions options;
  options.num_rows = 1000;
  Table source = GenerateMontgomery2016(options).ValueOrDie();
  Table target = GenerateMontgomery2017(source).ValueOrDie();
  auto src = *source.ColumnAsDoubles("base_salary");
  auto tgt = *target.ColumnAsDoubles("base_salary");
  double safety_rate = 0.0;
  int64_t safety_n = 0;
  double other_low_grade_rate = 0.0;
  int64_t other_n = 0;
  for (int64_t r = 0; r < source.num_rows(); ++r) {
    std::string dept = source.GetValueByName(r, "department")->str();
    int64_t grade = source.GetValueByName(r, "grade")->int64();
    double rate = (tgt[static_cast<size_t>(r)] - src[static_cast<size_t>(r)]) /
                  src[static_cast<size_t>(r)];
    if (dept == "POL" || dept == "FRS" || dept == "COR") {
      safety_rate += rate;
      ++safety_n;
    } else if (grade < 25) {
      other_low_grade_rate += rate;
      ++other_n;
    }
  }
  ASSERT_GT(safety_n, 0);
  ASSERT_GT(other_n, 0);
  EXPECT_GT(safety_rate / safety_n, other_low_grade_rate / other_n);
}

TEST(BillionairesGenTest, WealthIsPositiveHeavyTailed) {
  BillionairesGenOptions options;
  options.num_rows = 1000;
  Table t = GenerateBillionaires(options).ValueOrDie();
  auto worth = *t.ColumnAsDoubles("net_worth");
  double max_worth = 0.0;
  for (double w : worth) {
    EXPECT_GE(w, 1.0);  // billionaires only
    max_worth = std::max(max_worth, w);
  }
  EXPECT_GT(max_worth, 20.0);  // a heavy tail exists
}

TEST(BillionairesGenTest, MarketPolicyMovesIndustriesDifferently) {
  BillionairesGenOptions options;
  options.num_rows = 600;
  Table source = GenerateBillionaires(options).ValueOrDie();
  Table target = MakeMarketPolicy().Apply(source).ValueOrDie();
  auto src = *source.ColumnAsDoubles("net_worth");
  auto tgt = *target.ColumnAsDoubles("net_worth");
  for (int64_t r = 0; r < source.num_rows(); ++r) {
    std::string industry = source.GetValueByName(r, "industry")->str();
    double ratio = tgt[static_cast<size_t>(r)] / src[static_cast<size_t>(r)];
    if (industry == "Technology") {
      EXPECT_NEAR(ratio, 1.25, 1e-9);
    } else if (industry == "Energy") {
      EXPECT_NEAR(ratio, 0.9, 1e-9);
    }
  }
}

}  // namespace
}  // namespace charles
