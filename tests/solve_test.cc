#include "linalg/solve.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace charles {
namespace {

TEST(CholeskyTest, SolvesSpdSystem) {
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  auto x = CholeskySolve(a, {10.0, 8.0});
  ASSERT_TRUE(x.ok());
  // Verify A x = b.
  std::vector<double> back = a.MatVec(*x);
  EXPECT_NEAR(back[0], 10.0, 1e-9);
  EXPECT_NEAR(back[1], 8.0, 1e-9);
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix a = Matrix::FromRows({{0, 0}, {0, 0}});
  EXPECT_TRUE(CholeskySolve(a, {1.0, 1.0}).status().IsInvalidArgument());
  Matrix indefinite = Matrix::FromRows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskySolve(indefinite, {1.0, 1.0}).ok());
}

TEST(CholeskyTest, RejectsDimensionMismatch) {
  Matrix a = Matrix::FromRows({{1, 0}, {0, 1}});
  EXPECT_TRUE(CholeskySolve(a, {1.0}).status().IsInvalidArgument());
  Matrix rect(2, 3);
  EXPECT_TRUE(CholeskySolve(rect, {1.0, 1.0}).status().IsInvalidArgument());
}

TEST(QrTest, ExactSolutionForSquareSystem) {
  Matrix a = Matrix::FromRows({{2, 1}, {1, 3}});
  auto x = QrLeastSquares(a, {5.0, 10.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-9);
  EXPECT_NEAR((*x)[1], 3.0, 1e-9);
}

TEST(QrTest, LeastSquaresMinimizesResidual) {
  // Overdetermined: y = 2x + 1 with an outlier-free exact system.
  Matrix a = Matrix::FromRows({{1, 1}, {1, 2}, {1, 3}, {1, 4}});
  auto x = QrLeastSquares(a, {3.0, 5.0, 7.0, 9.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-9);
  EXPECT_NEAR((*x)[1], 2.0, 1e-9);
}

TEST(QrTest, RejectsRankDeficient) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 4}, {3, 6}});  // col2 = 2*col1
  EXPECT_FALSE(QrLeastSquares(a, {1.0, 2.0, 3.0}).ok());
}

TEST(QrTest, RejectsUnderdetermined) {
  Matrix a = Matrix::FromRows({{1, 2, 3}});
  EXPECT_TRUE(QrLeastSquares(a, {1.0}).status().IsInvalidArgument());
}

TEST(QrTest, RejectsZeroMatrix) {
  Matrix a(3, 2);
  EXPECT_FALSE(QrLeastSquares(a, {1.0, 2.0, 3.0}).ok());
}

TEST(RidgeTest, HandlesCollinearDesign) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 4}, {3, 6}});
  auto x = RidgeLeastSquares(a, {1.0, 2.0, 3.0}, 1e-6);
  ASSERT_TRUE(x.ok());
  // The ridge solution reproduces the targets despite collinearity.
  std::vector<double> back = a.MatVec(*x);
  for (size_t i = 0; i < back.size(); ++i) {
    EXPECT_NEAR(back[i], static_cast<double>(i + 1), 1e-3);
  }
}

TEST(RidgeTest, RequiresPositiveLambda) {
  Matrix a = Matrix::FromRows({{1.0}});
  EXPECT_TRUE(RidgeLeastSquares(a, {1.0}, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(RidgeLeastSquares(a, {1.0}, -1.0).status().IsInvalidArgument());
}

/// Property: QR recovers random planted coefficient vectors exactly.
class QrPlantedProperty : public ::testing::TestWithParam<int> {};

TEST_P(QrPlantedProperty, RecoversPlantedSolution) {
  int p = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(p));
  int64_t n = 20 + 3 * p;
  Matrix a(n, p);
  for (int64_t r = 0; r < n; ++r) {
    for (int c = 0; c < p; ++c) a.At(r, c) = rng.Uniform(-10, 10);
  }
  std::vector<double> planted(static_cast<size_t>(p));
  for (int c = 0; c < p; ++c) planted[static_cast<size_t>(c)] = rng.Uniform(-5, 5);
  std::vector<double> b = a.MatVec(planted);
  auto x = QrLeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  for (int c = 0; c < p; ++c) {
    EXPECT_NEAR((*x)[static_cast<size_t>(c)], planted[static_cast<size_t>(c)], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, QrPlantedProperty, ::testing::Values(1, 2, 3, 5, 8, 12));

}  // namespace
}  // namespace charles
