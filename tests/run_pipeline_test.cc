/// \file
/// RunPipeline (ISSUE 5): the staged decomposition of CharlesEngine::Find.
/// Covers the stage table, stage-by-stage composition on a shared RunState
/// (each stage's products checked before the next runs), and parity of the
/// staged pipeline against the pre-refactor golden summaries on the
/// employee and billionaires workloads.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/engine.h"
#include "core/run_pipeline.h"
#include "workload/billionaires_gen.h"
#include "workload/employee_gen.h"
#include "workload/example1.h"

namespace charles {
namespace {

TEST(RunPipelineTest, StageTableNamesTheDocumentedStages) {
  size_t count = 0;
  const RunPipeline::StageSpec* stages = RunPipeline::Stages(&count);
  ASSERT_EQ(count, 6u);
  EXPECT_STREQ(stages[0].name, "diff/align");
  EXPECT_STREQ(stages[1].name, "setup");
  EXPECT_STREQ(stages[2].name, "phase 1 (signals)");
  EXPECT_STREQ(stages[3].name, "phase 2 (trees)");
  EXPECT_STREQ(stages[4].name, "phase 3 (fits)");
  EXPECT_STREQ(stages[5].name, "rank/stream");
  // The three search phases land their wall time in the documented
  // SummaryList fields; the cheap bracketing stages only count into
  // elapsed_seconds.
  EXPECT_EQ(stages[0].timing, nullptr);
  EXPECT_EQ(stages[2].timing, &SummaryList::clustering_seconds);
  EXPECT_EQ(stages[3].timing, &SummaryList::induction_seconds);
  EXPECT_EQ(stages[4].timing, &SummaryList::fitting_seconds);
  EXPECT_EQ(stages[5].timing, nullptr);
}

TEST(RunPipelineTest, StagesComposeToTheOneCallEngine) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  options.num_threads = 1;
  CharlesEngine engine(options);

  // Drive the pipeline one stage at a time, checking each stage's products
  // on the shared RunState before the next stage consumes them.
  RunState state(engine, source, target, /*stream=*/nullptr, /*stop=*/nullptr);
  ASSERT_TRUE(RunPipeline::DiffAlign(state).ok());
  ASSERT_NE(state.analysis, nullptr);
  EXPECT_EQ(static_cast<int64_t>(state.y_old.size()), state.analysis->num_rows());
  EXPECT_EQ(state.y_old.size(), state.y_new.size());

  ASSERT_TRUE(RunPipeline::Setup(state).ok());
  EXPECT_FALSE(state.cond_names.empty());
  EXPECT_FALSE(state.tran_names.empty());
  EXPECT_EQ(state.cond_indices.size(), state.cond_names.size());
  ASSERT_FALSE(state.t_subsets.empty());
  EXPECT_TRUE(state.t_subsets.front().empty());  // ∅ first: constant shifts
  EXPECT_EQ(state.result.condition_subsets,
            static_cast<int64_t>(state.c_subsets.size()));

  ASSERT_TRUE(RunPipeline::Phase1Signals(state).ok());
  EXPECT_FALSE(state.labelings.empty());
  EXPECT_EQ(state.t_attr_names.size(), state.t_subsets.size());
  EXPECT_EQ(state.result.labelings, static_cast<int64_t>(state.labelings.size()));
  ASSERT_NE(state.shortlist_stats, nullptr);  // one scan serves every T
  EXPECT_EQ(state.shortlist_stats->n(), state.analysis->num_rows());

  ASSERT_TRUE(RunPipeline::Phase2Trees(state).ok());
  EXPECT_FALSE(state.partitions.empty());
  EXPECT_EQ(state.result.partitions,
            static_cast<int64_t>(state.partitions.size()));

  ASSERT_TRUE(RunPipeline::Phase3Fits(state).ok());
  EXPECT_EQ(state.work_items,
            static_cast<int64_t>(state.partitions.size() * state.t_subsets.size()));
  EXPECT_EQ(static_cast<int64_t>(state.outputs.size()), state.work_items);
  EXPECT_GT(state.result.leaf_fits_computed, 0);

  ASSERT_TRUE(RunPipeline::RankStream(state).ok());
  ASSERT_FALSE(state.result.summaries.empty());

  // The staged composition is exactly what Find() runs.
  SummaryList full = engine.Find(source, target).ValueOrDie();
  ASSERT_EQ(full.summaries.size(), state.result.summaries.size());
  for (size_t i = 0; i < full.summaries.size(); ++i) {
    EXPECT_EQ(full.summaries[i].ToString(), state.result.summaries[i].ToString());
    EXPECT_EQ(full.summaries[i].scores().score,
              state.result.summaries[i].scores().score);
  }
  EXPECT_EQ(full.candidates_evaluated, state.result.candidates_evaluated);
  EXPECT_EQ(full.candidates_deduped, state.result.candidates_deduped);
}

/// The pre-refactor goldens: search-trajectory counts and the top-ranked
/// summary of each workload, captured from the monolithic Find() at the
/// seed of this change (num_threads = 1, stats_block_rows = 64). The staged
/// pipeline must keep reproducing them.
struct Golden {
  int64_t labelings;
  int64_t partitions;
  int64_t candidates_evaluated;
  int64_t candidates_deduped;
  int64_t condition_subsets;
  int64_t transform_subsets;
  size_t num_summaries;
  std::string top_score;              ///< FormatDouble(score, 4)
  std::vector<std::string> top_contains;  ///< substrings of rank-0 ToString()
};

void ExpectGolden(const SummaryList& result, const Golden& golden) {
  EXPECT_EQ(result.labelings, golden.labelings);
  EXPECT_EQ(result.partitions, golden.partitions);
  EXPECT_EQ(result.candidates_evaluated, golden.candidates_evaluated);
  EXPECT_EQ(result.candidates_deduped, golden.candidates_deduped);
  EXPECT_EQ(result.condition_subsets, golden.condition_subsets);
  EXPECT_EQ(result.transform_subsets, golden.transform_subsets);
  ASSERT_EQ(result.summaries.size(), golden.num_summaries);
  EXPECT_EQ(FormatDouble(result.summaries[0].scores().score, 4), golden.top_score);
  std::string top = result.summaries[0].ToString();
  for (const std::string& fragment : golden.top_contains) {
    EXPECT_NE(top.find(fragment), std::string::npos)
        << "missing '" << fragment << "' in:\n" << top;
  }
}

TEST(RunPipelineGoldenTest, EmployeeMatchesPreRefactorSummaries) {
  EmployeeGenOptions gen;
  gen.num_rows = 600;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"emp_id"};
  options.stats_block_rows = 64;
  options.num_threads = 1;
  SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
  Golden golden;
  golden.labelings = 31;
  golden.partitions = 269;
  golden.candidates_evaluated = 1883;
  golden.candidates_deduped = 54;
  golden.condition_subsets = 14;
  golden.transform_subsets = 7;
  golden.num_summaries = 10;
  golden.top_score = "0.87";
  golden.top_contains = {
      "edu = 'BS'  \xE2\x86\x92  no change",
      "new_bonus = 1.03 \xC3\x97 old_bonus + 400",
      "new_bonus = 1.04 \xC3\x97 old_bonus + 800",
      "new_bonus = 1.05 \xC3\x97 old_bonus + 1000",
      "accuracy=1",
  };
  ExpectGolden(result, golden);
}

TEST(RunPipelineGoldenTest, BillionairesMatchesPreRefactorSummaries) {
  BillionairesGenOptions gen;
  gen.num_rows = 700;
  Table source = GenerateBillionaires(gen).ValueOrDie();
  Table target = MakeMarketPolicy().Apply(source).ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "net_worth";
  options.key_columns = {"person_id"};
  options.stats_block_rows = 64;
  options.num_threads = 1;
  SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
  Golden golden;
  golden.labelings = 30;
  golden.partitions = 249;
  golden.candidates_evaluated = 996;
  golden.candidates_deduped = 79;
  golden.condition_subsets = 14;
  golden.transform_subsets = 4;
  golden.num_summaries = 10;
  golden.top_score = "0.8647";
  golden.top_contains = {
      "new_net_worth = 1.1 \xC3\x97 old_net_worth + 0.5",
      "new_net_worth = 0.9 \xC3\x97 old_net_worth",
      "new_net_worth = 1.25 \xC3\x97 old_net_worth",
      "new_net_worth = 1.05 \xC3\x97 old_net_worth",
      "accuracy=1",
  };
  ExpectGolden(result, golden);
}

/// The golden trajectory must hold under every execution shape the pipeline
/// supports — parallel and sharded runs reduce to the same staged outputs.
TEST(RunPipelineGoldenTest, GoldenHoldsParallelAndSharded) {
  EmployeeGenOptions gen;
  gen.num_rows = 600;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"emp_id"};
  options.stats_block_rows = 64;
  options.num_threads = 1;
  SummaryList serial = SummarizeChanges(source, target, options).ValueOrDie();

  CharlesOptions parallel = options;
  parallel.num_threads = 4;
  CharlesOptions sharded = options;
  sharded.num_threads = 2;
  sharded.num_shards = 4;
  for (const CharlesOptions& variant : {parallel, sharded}) {
    SummaryList result = SummarizeChanges(source, target, variant).ValueOrDie();
    ASSERT_EQ(result.summaries.size(), serial.summaries.size());
    for (size_t i = 0; i < serial.summaries.size(); ++i) {
      EXPECT_EQ(result.summaries[i].ToString(), serial.summaries[i].ToString());
      EXPECT_EQ(result.summaries[i].scores().score,
                serial.summaries[i].scores().score);
    }
  }
}

}  // namespace
}  // namespace charles
