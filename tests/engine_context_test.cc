#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/engine_context.h"
#include "workload/employee_gen.h"
#include "workload/example1.h"

namespace charles {
namespace {

/// Bit-identical ranked output: same summaries in the same order with
/// byte-equal renderings, bit-equal scores, and the same search trajectory.
void ExpectIdenticalRuns(const SummaryList& expected, const SummaryList& actual) {
  ASSERT_EQ(expected.summaries.size(), actual.summaries.size());
  for (size_t i = 0; i < expected.summaries.size(); ++i) {
    const ChangeSummary& a = expected.summaries[i];
    const ChangeSummary& b = actual.summaries[i];
    EXPECT_EQ(a.Signature(), b.Signature()) << "rank " << i;
    EXPECT_EQ(a.scores().score, b.scores().score) << "rank " << i;
    EXPECT_EQ(a.scores().accuracy, b.scores().accuracy) << "rank " << i;
    EXPECT_EQ(a.ToString(), b.ToString()) << "rank " << i;
  }
  EXPECT_EQ(expected.labelings, actual.labelings);
  EXPECT_EQ(expected.partitions, actual.partitions);
  EXPECT_EQ(expected.candidates_evaluated, actual.candidates_evaluated);
  EXPECT_EQ(expected.candidates_deduped, actual.candidates_deduped);
}

CharlesOptions Example1Options() {
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  return options;
}

TEST(EngineContextTest, ResolvesThreadsAndBuildsCache) {
  EngineContextOptions ctx_options;
  ctx_options.num_threads = 3;
  EngineContext context(ctx_options);
  EXPECT_EQ(context.num_threads(), 3);
  ASSERT_NE(context.pool(), nullptr);
  EXPECT_EQ(context.pool()->size(), 3);
  ASSERT_NE(context.leaf_cache(), nullptr);
  EXPECT_EQ(context.leaf_cache()->num_shards(), 12);
  EXPECT_EQ(context.runs_completed(), 0);

  EngineContextOptions serial_options;
  serial_options.num_threads = 1;
  EngineContext serial(serial_options);
  EXPECT_EQ(serial.pool(), nullptr);  // serial contexts still share the cache
  EXPECT_NE(serial.leaf_cache(), nullptr);
}

TEST(EngineContextTest, ConsecutiveFindsBitIdenticalToFreshEngines) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options = Example1Options();

  options.num_threads = 1;
  SummaryList fresh1 = CharlesEngine(options).Find(source, target).ValueOrDie();
  SummaryList fresh2 = CharlesEngine(options).Find(source, target).ValueOrDie();

  EngineContextOptions ctx_options;
  ctx_options.num_threads = 2;
  EngineContext context(ctx_options);
  CharlesEngine engine(options, &context);
  SummaryList cold = engine.Find(source, target).ValueOrDie();
  SummaryList warm = engine.Find(source, target).ValueOrDie();

  ExpectIdenticalRuns(fresh1, cold);
  ExpectIdenticalRuns(fresh2, warm);
  EXPECT_EQ(context.runs_completed(), 2);
  EXPECT_EQ(cold.threads_used, 2);
}

TEST(EngineContextTest, WarmRunServesFitsFromContextCache) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options = Example1Options();

  EngineContext context;  // hardware concurrency; cache shared either way
  CharlesEngine engine(options, &context);
  SummaryList cold = engine.Find(source, target).ValueOrDie();
  size_t cached_after_cold = context.leaf_cache_entries();
  SummaryList warm = engine.Find(source, target).ValueOrDie();

  // Cold run computed and published fits; the warm run replays the identical
  // search, so every fit the cold run computed is served from the context
  // cache and nothing new is published.
  EXPECT_GT(cold.leaf_fits_computed, 0);
  EXPECT_GT(cached_after_cold, 0u);
  EXPECT_EQ(warm.leaf_fits_computed, 0);
  EXPECT_GT(warm.leaf_fits_reused, cold.leaf_fits_reused);
  EXPECT_EQ(context.leaf_cache_entries(), cached_after_cold);
  EXPECT_GT(context.leaf_cache_hits(), 0);
}

TEST(EngineContextTest, SerialContextStillWarmsAcrossRuns) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options = Example1Options();

  EngineContextOptions ctx_options;
  ctx_options.num_threads = 1;
  EngineContext context(ctx_options);
  CharlesEngine engine(options, &context);
  SummaryList cold = engine.Find(source, target).ValueOrDie();
  SummaryList warm = engine.Find(source, target).ValueOrDie();

  EXPECT_EQ(cold.threads_used, 1);
  EXPECT_GT(cold.leaf_fits_computed, 0);
  EXPECT_EQ(warm.leaf_fits_computed, 0);

  options.num_threads = 1;
  SummaryList fresh = CharlesEngine(options).Find(source, target).ValueOrDie();
  ExpectIdenticalRuns(fresh, warm);
}

TEST(EngineContextTest, DifferentWorkloadsOnOneContextDoNotCrossTalk) {
  // Two different snapshot pairs share one context; the run fingerprint keys
  // the cache, so neither run may observe the other's fits.
  Table ex_source = MakeExample1Source().ValueOrDie();
  Table ex_target = MakeExample1Target().ValueOrDie();
  EmployeeGenOptions gen;
  gen.num_rows = 200;
  Table emp_source = GenerateEmployees(gen).ValueOrDie();
  Table emp_target = MakeEmployeeBonusPolicy().Apply(emp_source).ValueOrDie();

  CharlesOptions ex_options = Example1Options();
  CharlesOptions emp_options;
  emp_options.target_attribute = "bonus";
  emp_options.key_columns = {"emp_id"};

  EngineContext context;
  SummaryList ex_ctx =
      SummarizeChanges(ex_source, ex_target, ex_options, &context).ValueOrDie();
  SummaryList emp_ctx =
      SummarizeChanges(emp_source, emp_target, emp_options, &context).ValueOrDie();

  ex_options.num_threads = 1;
  emp_options.num_threads = 1;
  SummaryList ex_fresh = SummarizeChanges(ex_source, ex_target, ex_options).ValueOrDie();
  SummaryList emp_fresh =
      SummarizeChanges(emp_source, emp_target, emp_options).ValueOrDie();
  ExpectIdenticalRuns(ex_fresh, ex_ctx);
  ExpectIdenticalRuns(emp_fresh, emp_ctx);

  // Both workloads' fits coexist in the cache under distinct fingerprints.
  SummaryList ex_warm =
      SummarizeChanges(ex_source, ex_target, ex_options, &context).ValueOrDie();
  SummaryList emp_warm =
      SummarizeChanges(emp_source, emp_target, emp_options, &context).ValueOrDie();
  EXPECT_EQ(ex_warm.leaf_fits_computed, 0);
  EXPECT_EQ(emp_warm.leaf_fits_computed, 0);
  ExpectIdenticalRuns(ex_fresh, ex_warm);
  ExpectIdenticalRuns(emp_fresh, emp_warm);
}

TEST(EngineContextTest, BoundedCacheEvictsLruAndStaysCorrect) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options = Example1Options();
  options.num_threads = 1;
  SummaryList fresh = CharlesEngine(options).Find(source, target).ValueOrDie();

  // How many distinct fits does this workload cache when unbounded?
  EngineContext unbounded;
  CharlesEngine warmup(options, &unbounded);
  warmup.Find(source, target).ValueOrDie();
  size_t full = unbounded.leaf_cache_entries();
  ASSERT_GT(full, 4u);

  // A context bounded to a fraction of that must evict (LRU) yet change
  // nothing about the output — a miss only recomputes the identical fit.
  EngineContextOptions ctx_options;
  ctx_options.cache_shards = 1;  // single shard: the bound is exact
  ctx_options.max_cache_entries = static_cast<int64_t>(full / 2);
  EngineContext context(ctx_options);
  CharlesEngine engine(options, &context);
  SummaryList cold = engine.Find(source, target).ValueOrDie();
  SummaryList warm = engine.Find(source, target).ValueOrDie();

  ExpectIdenticalRuns(fresh, cold);
  ExpectIdenticalRuns(fresh, warm);
  EXPECT_LE(context.leaf_cache_entries(), full / 2);
  EXPECT_GT(context.leaf_cache_evictions(), 0);
  // The warm run re-fits evicted entries (never more work than a cold run —
  // with an LRU thrashing pattern possibly the same amount, never less
  // than one fit, since the bound guarantees something was evicted).
  EXPECT_GT(warm.leaf_fits_computed, 0);
  EXPECT_LE(warm.leaf_fits_computed, cold.leaf_fits_computed);
  EXPECT_EQ(warm.leaf_fit_evictions, context.leaf_cache_evictions());
}

TEST(EngineContextTest, EngineOptionTrimsContextCacheAfterRun) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options = Example1Options();
  options.max_cache_entries = 4;

  EngineContextOptions ctx_options;
  ctx_options.cache_shards = 1;
  EngineContext context(ctx_options);  // context itself is unbounded
  CharlesEngine engine(options, &context);
  SummaryList result = engine.Find(source, target).ValueOrDie();
  EXPECT_FALSE(result.summaries.empty());
  // The run published every fit, then trimmed the cache down to the cap.
  EXPECT_LE(context.leaf_cache_entries(), 4u);
  EXPECT_GT(context.leaf_cache_evictions(), 0);
  EXPECT_EQ(result.leaf_fit_evictions, context.leaf_cache_evictions());
}

TEST(EngineContextTest, ClearCachesDropsEntries) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  EngineContext context;
  CharlesEngine engine(Example1Options(), &context);
  engine.Find(source, target).ValueOrDie();
  EXPECT_GT(context.leaf_cache_entries(), 0u);
  context.ClearCaches();
  EXPECT_EQ(context.leaf_cache_entries(), 0u);
  SummaryList recold = engine.Find(source, target).ValueOrDie();
  EXPECT_GT(recold.leaf_fits_computed, 0);
}

TEST(StreamingFindTest, EmitsPartialsBeforeResolveAndMatchesSerial) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options = Example1Options();
  options.top_n = 25;

  options.num_threads = 1;
  SummaryList serial = CharlesEngine(options).Find(source, target).ValueOrDie();

  for (int threads : {1, 2, 8}) {
    EngineContextOptions ctx_options;
    ctx_options.num_threads = threads;
    EngineContext context(ctx_options);
    CharlesEngine engine(options, &context);

    std::atomic<int64_t> updates{0};
    std::atomic<int64_t> last_completed{0};
    std::atomic<int64_t> shards_total{0};
    std::atomic<bool> monotone{true};
    SummaryStream stream([&](const SummaryStreamUpdate& update) {
      if (update.shards_completed <= last_completed.load()) monotone = false;
      last_completed = update.shards_completed;
      shards_total = update.shards_total;
      ++updates;
    });

    std::future<Result<SummaryList>> future = engine.FindAsync(source, target, &stream);
    SummaryList streamed = future.get().ValueOrDie();

    // >= 1 ranked partial arrived before the future resolved (every emission
    // happens while phase 3 is still executing), in shards_completed order,
    // and the full sweep was covered.
    EXPECT_GE(updates.load(), 1) << threads << " threads";
    EXPECT_EQ(stream.updates_emitted(), updates.load());
    EXPECT_TRUE(monotone.load());
    EXPECT_GT(shards_total.load(), 0);
    EXPECT_EQ(last_completed.load(), shards_total.load());

    // Streaming must not perturb the deterministic final ranking.
    ExpectIdenticalRuns(serial, streamed);
  }
}

TEST(StreamingFindTest, LastUpdateEqualsFinalRanking) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options = Example1Options();

  EngineContextOptions ctx_options;
  ctx_options.num_threads = 4;
  EngineContext context(ctx_options);
  CharlesEngine engine(options, &context);

  std::vector<ChangeSummary> last_provisional;
  SummaryStream stream([&](const SummaryStreamUpdate& update) {
    if (update.shards_completed == update.shards_total) {
      last_provisional = update.provisional;
    }
  });
  SummaryList result = engine.Find(source, target, &stream).ValueOrDie();

  // Once every shard is merged, the provisional ranking IS the final one.
  ASSERT_EQ(last_provisional.size(), result.summaries.size());
  for (size_t i = 0; i < result.summaries.size(); ++i) {
    EXPECT_EQ(last_provisional[i].Signature(), result.summaries[i].Signature());
    EXPECT_EQ(last_provisional[i].scores().score, result.summaries[i].scores().score);
  }
}

TEST(AdmissionControlTest, UnboundedContextTracksActiveRuns) {
  EngineContext context(EngineContextOptions{/*num_threads=*/1});
  EXPECT_EQ(context.max_concurrent_runs(), 0);
  EXPECT_EQ(context.active_runs(), 0);
  {
    EngineContext::RunSlot slot = context.AdmitRun().ValueOrDie();
    EXPECT_EQ(context.active_runs(), 1);
  }
  EXPECT_EQ(context.active_runs(), 0);
  EXPECT_EQ(context.runs_queued(), 0);
  EXPECT_EQ(context.runs_rejected(), 0);
}

TEST(AdmissionControlTest, RejectPolicyShedsExcessRuns) {
  EngineContextOptions context_options;
  context_options.num_threads = 1;
  context_options.max_concurrent_runs = 1;
  context_options.admission = AdmissionPolicy::kReject;
  EngineContext context(context_options);

  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesEngine engine(Example1Options(), &context);

  // Occupy the only slot by hand; the engine's Find must now be refused.
  EngineContext::RunSlot slot = context.AdmitRun().ValueOrDie();
  Status refused = engine.Find(source, target).status();
  EXPECT_TRUE(refused.IsResourceExhausted()) << refused.ToString();
  EXPECT_EQ(context.runs_rejected(), 1);

  // Freeing the slot readmits immediately.
  slot.Release();
  EXPECT_TRUE(engine.Find(source, target).ok());
  EXPECT_EQ(context.active_runs(), 0);
}

TEST(AdmissionControlTest, QueuePolicyBlocksUntilASlotFrees) {
  EngineContextOptions context_options;
  context_options.num_threads = 1;
  context_options.max_concurrent_runs = 1;
  context_options.admission = AdmissionPolicy::kQueue;
  EngineContext context(context_options);

  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesEngine engine(Example1Options(), &context);

  EngineContext::RunSlot slot = context.AdmitRun().ValueOrDie();
  auto queued = engine.FindAsync(source, target);
  // The queued run must be waiting on admission, not running.
  while (context.runs_queued() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(context.active_runs(), 1);  // ours — the queued run holds nothing
  EXPECT_EQ(queued.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);

  slot.Release();
  SummaryList result = queued.get().ValueOrDie();
  EXPECT_FALSE(result.summaries.empty());
  EXPECT_EQ(context.runs_queued(), 1);
  EXPECT_EQ(context.active_runs(), 0);
}

TEST(AdmissionControlTest, QueuedRunCanBeCancelledWhileWaiting) {
  EngineContextOptions context_options;
  context_options.num_threads = 1;
  context_options.max_concurrent_runs = 1;
  context_options.admission = AdmissionPolicy::kQueue;
  EngineContext context(context_options);

  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesEngine engine(Example1Options(), &context);

  // Hold the only slot for the whole test: the queued run must leave via
  // its stop token, not via a freed slot.
  EngineContext::RunSlot slot = context.AdmitRun().ValueOrDie();
  StopToken stop;
  std::atomic<int64_t> cancelled_updates{0};
  SummaryStream stream([&](const SummaryStreamUpdate& update) {
    if (update.cancelled) ++cancelled_updates;
  });
  auto queued = engine.FindAsync(source, target, &stream, &stop);
  while (context.runs_queued() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.RequestStop();
  Status status = queued.get().status();
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();
  // Even a run cancelled in the admission queue gets the promised final
  // cancelled stream update.
  EXPECT_EQ(cancelled_updates.load(), 1);
  EXPECT_EQ(context.active_runs(), 1);  // only the slot held by hand
}

TEST(AdmissionControlTest, SlotsReleaseOnEveryExitPath) {
  EngineContextOptions context_options;
  context_options.num_threads = 1;
  context_options.max_concurrent_runs = 1;
  context_options.admission = AdmissionPolicy::kReject;
  EngineContext context(context_options);
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();

  // A run that fails validation-side (cancelled before phase 1 completes)
  // must still give its slot back.
  CharlesEngine engine(Example1Options(), &context);
  StopToken stop;
  stop.RequestStop();
  EXPECT_TRUE(engine.Find(source, target, nullptr, &stop).status().IsCancelled());
  EXPECT_EQ(context.active_runs(), 0);
  EXPECT_TRUE(engine.Find(source, target).ok());
}

TEST(EngineContextTest, WarmShardedRunElidesEveryLeafMomentsTask) {
  // ROADMAP warm-rescan fix: a warm context already holds every (leaf, T)
  // fit, so the repeat sharded run must plan *zero* kLeafMoments work — the
  // leaves are elided from the task — while staying bit-identical.
  EmployeeGenOptions gen;
  gen.num_rows = 600;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"emp_id"};
  options.stats_block_rows = 64;
  options.num_shards = 4;

  EngineContextOptions ctx_options;
  ctx_options.num_threads = 2;
  EngineContext context(ctx_options);
  CharlesEngine engine(options, &context);
  SummaryList cold = engine.Find(source, target).ValueOrDie();
  SummaryList warm = engine.Find(source, target).ValueOrDie();

  // Cold: nothing cached, every deduplicated leaf is swept and none elided.
  EXPECT_GT(cold.shard_moment_leaves_swept, 0);
  EXPECT_EQ(cold.shard_moment_leaves_elided, 0);
  EXPECT_GT(cold.shard_score_probes, 0);
  EXPECT_GT(cold.shard_tasks_executed, 0);

  // Warm: every leaf's fits are cached, so the moments round issues zero
  // tasks; only the phase-1 signal round still scans rows.
  EXPECT_EQ(warm.shard_moment_leaves_swept, 0);
  EXPECT_EQ(warm.shard_moment_leaves_elided, cold.shard_moment_leaves_swept);
  EXPECT_EQ(warm.shard_score_probes, 0);
  // Elided rounds report zero time — a skipped stage must never surface a
  // residual or stale timing (SummaryList is per-run, and the round timings
  // are only written by rounds that actually executed).
  EXPECT_EQ(warm.shard_moments_seconds, 0.0);
  EXPECT_EQ(warm.shard_score_seconds, 0.0);
  EXPECT_EQ(warm.leaf_fits_computed, 0);

  // The run id is fingerprint-derived: surfaced as 16 hex digits and stable
  // across repeat runs of the same inputs (it *is* the cache-keying
  // fingerprint when a context is attached).
  ASSERT_EQ(cold.run_id.size(), 16u);
  EXPECT_EQ(warm.run_id, cold.run_id);
  // The signal round executed on every shard; the moments/error rounds
  // added none, so exactly one round's worth of tasks ran.
  EXPECT_EQ(warm.shard_tasks_executed, static_cast<int64_t>(warm.shards_used));

  // Elision never changes output: warm equals cold equals a fresh unsharded
  // serial engine.
  CharlesOptions plain = options;
  plain.num_shards = 0;
  plain.num_threads = 1;
  SummaryList fresh = CharlesEngine(plain).Find(source, target).ValueOrDie();
  ExpectIdenticalRuns(fresh, cold);
  ExpectIdenticalRuns(fresh, warm);
}

TEST(StreamingFindTest, BlockingFindStreamsToo) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options = Example1Options();
  options.num_threads = 1;  // no context: per-run serial engine also streams

  CharlesEngine engine(options);
  std::atomic<int64_t> updates{0};
  SummaryStream stream([&](const SummaryStreamUpdate& update) {
    EXPECT_LE(update.provisional.size(), static_cast<size_t>(options.top_n));
    ++updates;
  });
  SummaryList result = engine.Find(source, target, &stream).ValueOrDie();
  EXPECT_GE(updates.load(), 1);
  EXPECT_FALSE(result.summaries.empty());
}

}  // namespace
}  // namespace charles
