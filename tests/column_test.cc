#include "table/column.h"

#include <gtest/gtest.h>

namespace charles {
namespace {

TEST(ColumnTest, AppendAndGet) {
  Column col(TypeKind::kInt64);
  ASSERT_TRUE(col.Append(Value(1)).ok());
  ASSERT_TRUE(col.Append(Value(2)).ok());
  col.AppendNull();
  EXPECT_EQ(col.length(), 3);
  EXPECT_EQ(col.GetValue(0), Value(1));
  EXPECT_TRUE(col.GetValue(2).is_null());
  EXPECT_TRUE(col.IsNull(2));
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_EQ(col.null_count(), 1);
}

TEST(ColumnTest, TypeCheckingOnAppend) {
  Column col(TypeKind::kInt64);
  EXPECT_TRUE(col.Append(Value("x")).IsTypeError());
  EXPECT_TRUE(col.Append(Value(1.5)).IsTypeError());
  Column str_col(TypeKind::kString);
  EXPECT_TRUE(str_col.Append(Value(1)).IsTypeError());
  Column bool_col(TypeKind::kBool);
  EXPECT_TRUE(bool_col.Append(Value(1)).IsTypeError());
}

TEST(ColumnTest, Int64WidensIntoDoubleColumn) {
  Column col(TypeKind::kDouble);
  ASSERT_TRUE(col.Append(Value(3)).ok());
  EXPECT_EQ(col.GetValue(0), Value(3.0));
}

TEST(ColumnTest, SetOverwritesAndTracksNulls) {
  Column col(TypeKind::kDouble);
  ASSERT_TRUE(col.Append(Value(1.0)).ok());
  ASSERT_TRUE(col.Set(0, Value(2.0)).ok());
  EXPECT_EQ(col.GetValue(0), Value(2.0));
  ASSERT_TRUE(col.Set(0, Value::Null()).ok());
  EXPECT_EQ(col.null_count(), 1);
  ASSERT_TRUE(col.Set(0, Value(5.0)).ok());
  EXPECT_EQ(col.null_count(), 0);
  EXPECT_TRUE(col.Set(3, Value(1.0)).IsOutOfRange());
  EXPECT_TRUE(col.Set(0, Value("s")).IsTypeError());
}

TEST(ColumnTest, ToDoublesNumericOnly) {
  Column col(TypeKind::kInt64);
  ASSERT_TRUE(col.Append(Value(1)).ok());
  ASSERT_TRUE(col.Append(Value(2)).ok());
  auto values = col.ToDoubles();
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(*values, (std::vector<double>{1.0, 2.0}));

  Column str_col(TypeKind::kString);
  ASSERT_TRUE(str_col.Append(Value("x")).ok());
  EXPECT_TRUE(str_col.ToDoubles().status().IsTypeError());
}

TEST(ColumnTest, ToDoublesRejectsNulls) {
  Column col(TypeKind::kDouble);
  ASSERT_TRUE(col.Append(Value(1.0)).ok());
  col.AppendNull();
  EXPECT_TRUE(col.ToDoubles().status().IsInvalidArgument());
}

TEST(ColumnTest, GatherDoublesSubset) {
  Column col(TypeKind::kDouble);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(col.Append(Value(i * 10.0)).ok());
  auto gathered = col.GatherDoubles(RowSet({1, 3}));
  ASSERT_TRUE(gathered.ok());
  EXPECT_EQ(*gathered, (std::vector<double>{10.0, 30.0}));
  EXPECT_TRUE(col.GatherDoubles(RowSet({9})).status().IsOutOfRange());
}

TEST(ColumnTest, TakeReordersAndPreservesNulls) {
  Column col(TypeKind::kString);
  ASSERT_TRUE(col.Append(Value("a")).ok());
  col.AppendNull();
  ASSERT_TRUE(col.Append(Value("c")).ok());
  Column taken = col.Take(RowSet({1, 2}));
  EXPECT_EQ(taken.length(), 2);
  EXPECT_TRUE(taken.IsNull(0));
  EXPECT_EQ(taken.GetValue(1), Value("c"));
}

TEST(ColumnTest, DistinctValues) {
  Column col(TypeKind::kString);
  for (const char* v : {"b", "a", "b", "c", "a"}) {
    ASSERT_TRUE(col.Append(Value(v)).ok());
  }
  col.AppendNull();
  EXPECT_EQ(col.CountDistinct(), 3);
  std::vector<Value> distinct = col.DistinctValues();
  ASSERT_EQ(distinct.size(), 3u);
  EXPECT_EQ(distinct[0], Value("b"));  // first-appearance order
  EXPECT_EQ(distinct[1], Value("a"));
  EXPECT_EQ(distinct[2], Value("c"));
}

TEST(ColumnTest, EqualsChecksTypeLengthValuesValidity) {
  Column a(TypeKind::kInt64);
  Column b(TypeKind::kInt64);
  ASSERT_TRUE(a.Append(Value(1)).ok());
  ASSERT_TRUE(b.Append(Value(1)).ok());
  EXPECT_TRUE(a.Equals(b));
  ASSERT_TRUE(b.Append(Value(2)).ok());
  EXPECT_FALSE(a.Equals(b));
  Column c(TypeKind::kDouble);
  ASSERT_TRUE(c.Append(Value(1.0)).ok());
  EXPECT_FALSE(a.Equals(c));  // type differs even though values compare equal
}

TEST(ColumnTest, NullColumnHoldsOnlyNulls) {
  Column col(TypeKind::kNull);
  col.AppendNull();
  EXPECT_TRUE(col.Append(Value(1)).IsTypeError());
  EXPECT_TRUE(col.GetValue(0).is_null());
}

}  // namespace
}  // namespace charles
