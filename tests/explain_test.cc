#include "core/explain.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workload/example1.h"

namespace charles {
namespace {

LinearTransform Rule(double slope, double intercept) {
  LinearModel model;
  model.feature_names = {"bonus"};
  model.coefficients = {slope};
  model.intercept = intercept;
  return LinearTransform::Linear("bonus", std::move(model));
}

TEST(ExplainTransformTest, PercentIncreaseWithFlat) {
  EXPECT_EQ(ExplainTransform(Rule(1.05, 1000)),
            "received a 5% increase on their bonus, plus a flat 1000");
}

TEST(ExplainTransformTest, PercentIncreaseOnly) {
  EXPECT_EQ(ExplainTransform(Rule(1.04, 0)),
            "received a 4% increase on their bonus");
}

TEST(ExplainTransformTest, PercentCut) {
  EXPECT_EQ(ExplainTransform(Rule(0.9, 0)), "took a 10% cut on their bonus");
}

TEST(ExplainTransformTest, FlatShift) {
  EXPECT_EQ(ExplainTransform(Rule(1.0, 500)),
            "had bonus increased by a flat 500");
  EXPECT_EQ(ExplainTransform(Rule(1.0, -500)),
            "had bonus decreased by a flat 500");
}

TEST(ExplainTransformTest, ConstantAssignment) {
  LinearModel model;
  model.intercept = 13790;
  LinearTransform t = LinearTransform::Linear("bonus", std::move(model));
  EXPECT_EQ(ExplainTransform(t), "had bonus set to 13790");
}

TEST(ExplainTransformTest, NoChange) {
  EXPECT_EQ(ExplainTransform(LinearTransform::NoChange("bonus")),
            "kept their previous bonus");
}

TEST(ExplainTransformTest, CrossAttributeFallsBackToEquation) {
  LinearModel model;
  model.feature_names = {"salary"};
  model.coefficients = {0.105};
  model.intercept = 1000;
  LinearTransform t = LinearTransform::Linear("bonus", std::move(model));
  std::string text = ExplainTransform(t);
  EXPECT_NE(text.find("recomputed as"), std::string::npos);
  EXPECT_NE(text.find("0.105 × salary"), std::string::npos);
}

TEST(ExplainSummaryTest, Example1ProseMatchesThePapersStory) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
  ExplainOptions explain_options;
  explain_options.entity_noun = "employees";
  std::string prose = ExplainSummary(result.summaries[0], explain_options);
  // The paper's R1 in prose.
  EXPECT_NE(prose.find("Employees where edu = 'PhD'"), std::string::npos) << prose;
  EXPECT_NE(prose.find("received a 5% increase on their bonus, plus a flat 1000"),
            std::string::npos)
      << prose;
  EXPECT_NE(prose.find("kept their previous bonus"), std::string::npos) << prose;
  EXPECT_NE(prose.find("33.33% of employees"), std::string::npos) << prose;
  EXPECT_NE(prose.find("accuracy 1"), std::string::npos) << prose;
}

TEST(ExplainSummaryTest, UniversalConditionSaysAll) {
  ConditionalTransform ct;
  ct.condition = MakeTrue();
  ct.transform = Rule(1.06, 0);
  ct.coverage = 1.0;
  ChangeSummary summary({std::move(ct)}, "bonus");
  ExplainOptions options;
  options.entity_noun = "employees";
  options.include_scores = false;
  EXPECT_EQ(ExplainSummary(summary, options),
            "- All employees (100% of employees) received a 6% increase on their "
            "bonus.\n");
}

}  // namespace
}  // namespace charles
