#include "common/combinatorics.h"

#include <gtest/gtest.h>

#include <set>

namespace charles {
namespace {

TEST(BinomialTest, SmallValues) {
  EXPECT_EQ(BinomialCoefficient(5, 0), 1);
  EXPECT_EQ(BinomialCoefficient(5, 2), 10);
  EXPECT_EQ(BinomialCoefficient(5, 5), 1);
  EXPECT_EQ(BinomialCoefficient(10, 3), 120);
}

TEST(BinomialTest, OutOfRangeIsZero) {
  EXPECT_EQ(BinomialCoefficient(5, 6), 0);
  EXPECT_EQ(BinomialCoefficient(5, -1), 0);
}

TEST(BinomialTest, SaturatesOnOverflow) {
  EXPECT_EQ(BinomialCoefficient(200, 100), std::numeric_limits<int64_t>::max());
}

TEST(EnumerateSubsetsTest, CountsMatchFormula) {
  // n=5, max=2: C(5,1)+C(5,2) = 5+10 = 15.
  auto subsets = EnumerateSubsets(5, 2);
  EXPECT_EQ(static_cast<int64_t>(subsets.size()), 15);
  EXPECT_EQ(CountSubsets(5, 2), 15);
}

TEST(EnumerateSubsetsTest, MaxSizeClampsToN) {
  auto subsets = EnumerateSubsets(3, 10);
  EXPECT_EQ(subsets.size(), 7u);  // 2^3 - 1
  EXPECT_EQ(CountSubsets(3, 10), 7);
}

TEST(EnumerateSubsetsTest, EmptyCases) {
  EXPECT_TRUE(EnumerateSubsets(0, 3).empty());
  EXPECT_TRUE(EnumerateSubsets(4, 0).empty());
}

TEST(EnumerateSubsetsTest, SmallSubsetsFirst) {
  auto subsets = EnumerateSubsets(4, 3);
  for (size_t i = 1; i < subsets.size(); ++i) {
    EXPECT_LE(subsets[i - 1].size(), subsets[i].size());
  }
}

TEST(EnumerateSubsetsTest, AllDistinctAndSorted) {
  auto subsets = EnumerateSubsets(6, 3);
  std::set<std::vector<int>> seen;
  for (const auto& s : subsets) {
    for (size_t i = 1; i < s.size(); ++i) EXPECT_LT(s[i - 1], s[i]);
    EXPECT_TRUE(seen.insert(s).second) << "duplicate subset";
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), CountSubsets(6, 3));
}

class SubsetCountProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SubsetCountProperty, EnumerationMatchesCount) {
  auto [n, m] = GetParam();
  EXPECT_EQ(static_cast<int64_t>(EnumerateSubsets(n, m).size()), CountSubsets(n, m));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SubsetCountProperty,
                         ::testing::Values(std::pair{1, 1}, std::pair{4, 2},
                                           std::pair{6, 6}, std::pair{8, 3},
                                           std::pair{10, 2}, std::pair{12, 1}));

}  // namespace
}  // namespace charles
