#include "core/setup_assistant.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/employee_gen.h"
#include "workload/example1.h"

namespace charles {
namespace {

CharlesOptions BonusOptions() {
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  return options;
}

SnapshotDiff Example1Diff(const Table& source, const Table& target) {
  DiffOptions options;
  options.key_columns = {"name"};
  return SnapshotDiff::Compute(source, target, options).ValueOrDie();
}

TEST(SetupAssistantTest, EduTopsConditionListOnExample1) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  SnapshotDiff diff = Example1Diff(source, target);
  SetupResult setup = SetupAssistant::Analyze(diff, BonusOptions()).ValueOrDie();
  ASSERT_FALSE(setup.condition_candidates.empty());
  // edu drives the change groups: it must rank first with a strong score.
  EXPECT_EQ(setup.condition_candidates[0].name, "edu");
  EXPECT_GT(setup.condition_candidates[0].association, 0.9);
  EXPECT_TRUE(setup.condition_candidates[0].above_threshold);
}

TEST(SetupAssistantTest, OldTargetIsATransformCandidate) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  SnapshotDiff diff = Example1Diff(source, target);
  SetupResult setup = SetupAssistant::Analyze(diff, BonusOptions()).ValueOrDie();
  std::vector<std::string> names = setup.TransformNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "bonus"), names.end());
  // But never a condition candidate.
  std::vector<std::string> cond = setup.ConditionNames();
  EXPECT_EQ(std::find(cond.begin(), cond.end(), "bonus"), cond.end());
}

TEST(SetupAssistantTest, ExcludingOldTargetWorks) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  SnapshotDiff diff = Example1Diff(source, target);
  CharlesOptions options = BonusOptions();
  options.include_old_target_in_transform = false;
  SetupResult setup = SetupAssistant::Analyze(diff, options).ValueOrDie();
  std::vector<std::string> names = setup.TransformNames();
  EXPECT_EQ(std::find(names.begin(), names.end(), "bonus"), names.end());
}

TEST(SetupAssistantTest, KeyColumnsNeverCandidates) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  SnapshotDiff diff = Example1Diff(source, target);
  SetupResult setup = SetupAssistant::Analyze(diff, BonusOptions()).ValueOrDie();
  for (const auto& c : setup.condition_candidates) EXPECT_NE(c.name, "name");
  for (const auto& c : setup.transform_candidates) EXPECT_NE(c.name, "name");
}

TEST(SetupAssistantTest, MinimumCandidatesKeptBelowThreshold) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  SnapshotDiff diff = Example1Diff(source, target);
  CharlesOptions options = BonusOptions();
  options.correlation_threshold = 0.99;  // nothing clears this
  options.min_condition_candidates = 2;
  SetupResult setup = SetupAssistant::Analyze(diff, options).ValueOrDie();
  EXPECT_GE(setup.condition_candidates.size(), 2u);
  // They must be flagged as below-threshold keeps.
  EXPECT_FALSE(setup.condition_candidates[1].above_threshold);
}

TEST(SetupAssistantTest, CandidatesRankedByAssociation) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  SnapshotDiff diff = Example1Diff(source, target);
  SetupResult setup = SetupAssistant::Analyze(diff, BonusOptions()).ValueOrDie();
  for (size_t i = 1; i < setup.condition_candidates.size(); ++i) {
    EXPECT_GE(setup.condition_candidates[i - 1].association,
              setup.condition_candidates[i].association);
  }
}

TEST(SetupAssistantTest, DecoysRankBelowInformativeAttributes) {
  EmployeeGenOptions gen;
  gen.num_rows = 600;
  gen.num_decoy_numeric = 4;
  gen.num_decoy_categorical = 4;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
  DiffOptions diff_options;
  diff_options.key_columns = {"emp_id"};
  SnapshotDiff diff = SnapshotDiff::Compute(source, target, diff_options).ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"emp_id"};
  options.max_condition_candidates = 3;
  SetupResult setup = SetupAssistant::Analyze(diff, options).ValueOrDie();
  // The top condition candidates must all be real attributes, not decoys.
  for (const auto& c : setup.condition_candidates) {
    EXPECT_EQ(c.name.find("decoy"), std::string::npos) << c.name;
  }
  EXPECT_EQ(setup.condition_candidates[0].name, "edu");
}

TEST(SetupAssistantTest, NonNumericTargetRejected) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  SnapshotDiff diff = Example1Diff(source, target);
  CharlesOptions options = BonusOptions();
  options.target_attribute = "edu";
  EXPECT_TRUE(SetupAssistant::Analyze(diff, options).status().IsTypeError());
}

TEST(SetupAssistantTest, CapsRespected) {
  EmployeeGenOptions gen;
  gen.num_rows = 200;
  gen.num_decoy_numeric = 10;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
  DiffOptions diff_options;
  diff_options.key_columns = {"emp_id"};
  SnapshotDiff diff = SnapshotDiff::Compute(source, target, diff_options).ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"emp_id"};
  options.max_condition_candidates = 4;
  options.max_transform_candidates = 3;
  SetupResult setup = SetupAssistant::Analyze(diff, options).ValueOrDie();
  EXPECT_LE(setup.condition_candidates.size(), 4u);
  EXPECT_LE(setup.transform_candidates.size(), 3u);
}

}  // namespace
}  // namespace charles
