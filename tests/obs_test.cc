/// \file
/// The observability layer (ISSUE 9): span nesting, ordering and
/// thread-local context; cross-process span import with rebasing; Chrome
/// trace export; histogram bucket-edge and quantile math; and registry
/// behavior (stable pointers, text/JSON snapshots) under concurrent update
/// from the pool.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "core/engine.h"
#include "obs/diagnostics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel.h"

namespace charles {
namespace {

// --- Spans ------------------------------------------------------------------

TEST(ObsTraceTest, NestedSpansParentNaturallyOnOneThread) {
  obs::TraceRecorder recorder(0x1234);
  {
    obs::Span outer(&recorder, "outer");
    EXPECT_TRUE(outer.active());
    EXPECT_EQ(outer.id(), 1u);
    {
      obs::Span inner(&recorder, "inner");
      EXPECT_EQ(inner.id(), 2u);
      inner.Annotate("k", "v");
    }
    obs::Span sibling(&recorder, "sibling");
    EXPECT_EQ(sibling.id(), 3u);
  }
  std::vector<obs::SpanRecord> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, 0u);  // root
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, 1u);  // nested under outer
  EXPECT_EQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[2].parent, 1u);  // inner closed; outer is current again
  ASSERT_EQ(spans[1].annotations.size(), 1u);
  EXPECT_EQ(spans[1].annotations[0].first, "k");
  EXPECT_EQ(spans[1].annotations[0].second, "v");
  // All closed, durations recorded, start order monotone per thread.
  for (const obs::SpanRecord& span : spans) EXPECT_GE(span.dur_ns, 0);
  EXPECT_LE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_LE(spans[1].start_ns, spans[2].start_ns);
  EXPECT_EQ(recorder.trace_id(), 0x1234u);
}

TEST(ObsTraceTest, NullRecorderSpanIsInert) {
  obs::Span span(nullptr, "never");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.id(), 0u);
  span.Annotate("k", "v");  // no-op, must not crash
  obs::ThreadTraceContext context = obs::CurrentTraceContext();
  EXPECT_EQ(context.recorder, nullptr);
  EXPECT_EQ(context.span_id, 0u);
}

TEST(ObsTraceTest, CurrentTraceContextSeesInnermostSpan) {
  obs::TraceRecorder recorder;
  obs::RunIdScope run_scope(0xfeed);
  obs::Span outer(&recorder, "outer");
  {
    obs::Span inner(&recorder, "inner");
    obs::ThreadTraceContext context = obs::CurrentTraceContext();
    EXPECT_EQ(context.recorder, &recorder);
    EXPECT_EQ(context.span_id, inner.id());
    EXPECT_EQ(context.run_id, 0xfeedu);
  }
  EXPECT_EQ(obs::CurrentTraceContext().span_id, outer.id());
}

TEST(ObsTraceTest, RunIdScopeNestsAndRestores) {
  EXPECT_EQ(obs::CurrentRunId(), 0u);
  {
    obs::RunIdScope a(7);
    EXPECT_EQ(obs::CurrentRunId(), 7u);
    {
      obs::RunIdScope b(9);
      EXPECT_EQ(obs::CurrentRunId(), 9u);
    }
    EXPECT_EQ(obs::CurrentRunId(), 7u);
  }
  EXPECT_EQ(obs::CurrentRunId(), 0u);
  EXPECT_EQ(obs::FormatRunId(0xabcu), "0000000000000abc");
}

TEST(ObsTraceTest, ExplicitParentCrossesThreads) {
  obs::TraceRecorder recorder;
  uint64_t root_id = 0;
  {
    obs::Span root(&recorder, "root");
    root_id = root.id();
    ParallelFor(nullptr, 4, [&](int64_t i) {
      obs::Span child(&recorder, "child", root_id);
      child.Annotate("i", std::to_string(i));
    });
  }
  std::vector<obs::SpanRecord> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 5u);
  int64_t children = 0;
  for (const obs::SpanRecord& span : spans) {
    if (span.name == "child") {
      ++children;
      EXPECT_EQ(span.parent, root_id);
    }
  }
  EXPECT_EQ(children, 4);
}

TEST(ObsTraceTest, ImportSpansRemapsRebasesAndReparents) {
  obs::TraceRecorder recorder;
  uint64_t dispatch_id = 0;
  {
    obs::Span dispatch(&recorder, "dispatch");
    dispatch_id = dispatch.id();
  }
  // A worker blob: ids 1..2, starts relative to the worker's task start.
  std::vector<obs::SpanRecord> blob(2);
  blob[0].id = 1;
  blob[0].parent = 0;
  blob[0].name = "worker:task";
  blob[0].start_ns = 0;
  blob[0].dur_ns = 600;
  blob[1].id = 2;
  blob[1].parent = 1;
  blob[1].name = "fold";
  blob[1].start_ns = 100;
  blob[1].dur_ns = 400;
  recorder.ImportSpans(blob, dispatch_id, /*anchor_ns=*/50'000, /*tid=*/1001);

  std::vector<obs::SpanRecord> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  const obs::SpanRecord& task = spans[1];
  const obs::SpanRecord& fold = spans[2];
  EXPECT_EQ(task.name, "worker:task");
  EXPECT_EQ(task.parent, dispatch_id);       // root re-parented on dispatch
  EXPECT_EQ(task.start_ns, 50'000);          // rebased to the anchor
  EXPECT_EQ(task.tid, 1001u);
  EXPECT_EQ(fold.parent, task.id);           // internal link remapped
  EXPECT_EQ(fold.start_ns, 50'100);
  EXPECT_EQ(fold.dur_ns, 400);
}

TEST(ObsTraceTest, ImportSpansSurvivesMalformedParents) {
  obs::TraceRecorder recorder;
  std::vector<obs::SpanRecord> blob(1);
  blob[0].id = 1;
  blob[0].parent = 99;  // dangling: worker bug or hostile frame
  blob[0].name = "orphan";
  blob[0].start_ns = 0;
  blob[0].dur_ns = -5;  // negative duration clamps to 0
  recorder.ImportSpans(blob, /*parent_for_roots=*/0, /*anchor_ns=*/0,
                       /*tid=*/1);
  std::vector<obs::SpanRecord> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].parent, 0u);  // dangling parent defaults to the root
  EXPECT_EQ(spans[0].dur_ns, 0);
}

TEST(ObsTraceTest, ChromeTraceJsonCarriesSpansAndTraceId) {
  obs::TraceRecorder recorder(0xdeadbeef);
  {
    obs::Span outer(&recorder, "phase1");
    outer.Annotate("rows", "600");
    obs::Span inner(&recorder, "fold");
  }
  std::string json = recorder.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"phase1\""), std::string::npos);
  EXPECT_NE(json.find("\"fold\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find(obs::FormatRunId(0xdeadbeef)), std::string::npos);
  EXPECT_NE(json.find("\"rows\":\"600\""), std::string::npos);
}

// --- Metrics ----------------------------------------------------------------

TEST(ObsMetricsTest, CounterAndGaugeBasics) {
  obs::Counter counter;
  counter.Increment();
  counter.Add(9);
  EXPECT_EQ(counter.Value(), 10);

  obs::Gauge gauge;
  gauge.Set(5);
  gauge.Add(-2);
  EXPECT_EQ(gauge.Value(), 3);
  gauge.Max(10);
  EXPECT_EQ(gauge.Value(), 10);
  gauge.Max(4);  // lower value never lowers a high-water gauge
  EXPECT_EQ(gauge.Value(), 10);
}

TEST(ObsMetricsTest, HistogramBucketEdges) {
  obs::Histogram histogram({1.0, 2.0, 4.0});
  // An observation lands in the first bucket whose bound is >= the value:
  // the bound itself belongs to its bucket, epsilon past it to the next.
  histogram.Observe(0.5);
  histogram.Observe(1.0);
  histogram.Observe(1.5);
  histogram.Observe(2.0);
  histogram.Observe(4.0);
  histogram.Observe(100.0);  // overflow
  std::vector<int64_t> counts = histogram.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);  // 0.5, 1.0
  EXPECT_EQ(counts[1], 2);  // 1.5, 2.0
  EXPECT_EQ(counts[2], 1);  // 4.0
  EXPECT_EQ(counts[3], 1);  // 100.0
  EXPECT_EQ(histogram.Count(), 6);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 100.0);
}

TEST(ObsMetricsTest, QuantileInterpolatesWithinBuckets) {
  obs::Histogram histogram({10.0, 20.0, 40.0});
  // 100 observations, uniform in (0, 10]: the whole mass sits in bucket 0.
  for (int i = 1; i <= 100; ++i) histogram.Observe(i * 0.1);
  // Rank q*100 inside [0, 10): linear interpolation from the bucket's lower
  // bound (0 for the first bucket) to its upper bound.
  EXPECT_NEAR(histogram.P50(), 5.0, 1e-9);
  EXPECT_NEAR(histogram.P90(), 9.0, 1e-9);
  EXPECT_NEAR(histogram.P99(), 9.9, 1e-9);
  EXPECT_NEAR(histogram.Quantile(0.0), 0.0, 1e-9);
  EXPECT_NEAR(histogram.Quantile(1.0), 10.0, 1e-9);
}

TEST(ObsMetricsTest, QuantileAcrossBucketsAndOverflowFloor) {
  obs::Histogram histogram({1.0, 2.0});
  histogram.Observe(0.5);   // bucket [0, 1]
  histogram.Observe(1.5);   // bucket (1, 2]
  histogram.Observe(50.0);  // overflow
  histogram.Observe(60.0);  // overflow
  // Ranks 3 and 4 are in the overflow bucket, which has no upper bound: the
  // quantile floors at the last finite bound rather than extrapolating.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 2.0);
  // Rank 0.25*4 = 1 lands at the end of the first bucket.
  EXPECT_NEAR(histogram.Quantile(0.25), 1.0, 1e-9);
  // Empty histogram: quantiles are 0.
  obs::Histogram empty({1.0});
  EXPECT_EQ(empty.Quantile(0.5), 0.0);
}

TEST(ObsMetricsTest, DefaultLatencyBoundsAscend) {
  std::vector<double> bounds = obs::Histogram::DefaultLatencyBounds();
  ASSERT_GE(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(ObsMetricsTest, RegistryReturnsStablePointersByName) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.counter("x");
  obs::Counter* b = registry.counter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.counter("y"), a);
  // Same name, different kinds: distinct namespaces, distinct instruments.
  EXPECT_NE(static_cast<void*>(registry.gauge("x")), static_cast<void*>(a));
  obs::Histogram* h = registry.histogram("lat", {1.0, 2.0});
  EXPECT_EQ(registry.histogram("lat"), h);  // bounds ignored after creation
  EXPECT_EQ(h->bounds().size(), 2u);
}

TEST(ObsMetricsTest, SnapshotsRenderEveryInstrument) {
  obs::MetricsRegistry registry;
  registry.counter("engine.runs")->Add(3);
  registry.gauge("engine.active")->Set(1);
  registry.histogram("engine.lat", {0.1, 1.0})->Observe(0.05);
  std::string text = registry.TextSnapshot();
  EXPECT_NE(text.find("counter engine.runs 3"), std::string::npos) << text;
  EXPECT_NE(text.find("gauge engine.active 1"), std::string::npos) << text;
  EXPECT_NE(text.find("histogram engine.lat"), std::string::npos) << text;
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.runs\":3"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  EXPECT_NE(json.find("\"inf\""), std::string::npos);  // overflow bucket
}

TEST(ObsMetricsTest, ConcurrentUpdatesUnderThePoolLoseNothing) {
  obs::MetricsRegistry registry;
  ThreadPool pool(4);
  constexpr int64_t kTasks = 64;
  constexpr int64_t kPerTask = 1000;
  ParallelFor(&pool, kTasks, [&](int64_t task) {
    // Lookups race with updates: find-or-create must hand every thread the
    // same instrument, and relaxed updates must still sum exactly.
    obs::Counter* counter = registry.counter("hammer.count");
    obs::Histogram* histogram = registry.histogram("hammer.lat", {0.5});
    obs::Gauge* gauge = registry.gauge("hammer.high");
    for (int64_t i = 0; i < kPerTask; ++i) {
      counter->Increment();
      histogram->Observe(task % 2 == 0 ? 0.25 : 0.75);
      gauge->Max(task * kPerTask + i);
    }
  });
  EXPECT_EQ(registry.counter("hammer.count")->Value(), kTasks * kPerTask);
  EXPECT_EQ(registry.histogram("hammer.lat")->Count(), kTasks * kPerTask);
  std::vector<int64_t> counts = registry.histogram("hammer.lat")->BucketCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0] + counts[1], kTasks * kPerTask);
  EXPECT_EQ(counts[0], kTasks / 2 * kPerTask);
  EXPECT_EQ(registry.gauge("hammer.high")->Value(), kTasks * kPerTask - 1);
}

TEST(ObsMetricsTest, ConcurrentSpansOnOneRecorderStaySane) {
  obs::TraceRecorder recorder;
  ThreadPool pool(4);
  constexpr int64_t kSpans = 400;
  ParallelFor(&pool, kSpans, [&](int64_t i) {
    obs::Span span(&recorder, "work");
    if (i % 7 == 0) span.Annotate("i", std::to_string(i));
  });
  std::vector<obs::SpanRecord> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kSpans));
  std::vector<bool> seen(spans.size() + 1, false);
  for (const obs::SpanRecord& span : spans) {
    ASSERT_GE(span.id, 1u);
    ASSERT_LE(span.id, spans.size());
    EXPECT_FALSE(seen[span.id]);  // ids unique
    seen[span.id] = true;
    EXPECT_GE(span.dur_ns, 0);    // all closed
  }
}

// --- Diagnostics JSON -------------------------------------------------------

TEST(ObsDiagnosticsTest, RunDiagnosticsJsonHasVersionedSchema) {
  SummaryList summary;
  summary.run_id = "00000000deadbeef";
  summary.candidates_evaluated = 42;
  summary.shards_used = 4;
  summary.remote_tasks_dispatched = 12;
  summary.elapsed_seconds = 1.5;
  RemoteWorkerCounters worker;
  worker.endpoint = "127.0.0.1:9000";
  worker.healthy = true;
  worker.tasks_dispatched = 12;
  summary.remote_workers.push_back(worker);

  obs::RunDiagnostics diagnostics = obs::RunDiagnostics::FromSummary(summary);
  std::string json = diagnostics.ToJson();
  EXPECT_EQ(json, summary.ToJson());  // SummaryList::ToJson delegates
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"run_id\":\"00000000deadbeef\""), std::string::npos);
  EXPECT_NE(json.find("\"candidates_evaluated\":42"), std::string::npos);
  EXPECT_NE(json.find("\"shards_used\":4"), std::string::npos);
  EXPECT_NE(json.find("\"127.0.0.1:9000\""), std::string::npos);
  EXPECT_NE(json.find("\"workers\":["), std::string::npos);
}

}  // namespace
}  // namespace charles
