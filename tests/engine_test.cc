#include "core/engine.h"

#include <gtest/gtest.h>

#include "workload/billionaires_gen.h"
#include "workload/employee_gen.h"
#include "workload/example1.h"
#include "workload/montgomery_gen.h"
#include "workload/policy.h"

namespace charles {
namespace {

CharlesOptions Example1Options() {
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  return options;
}

TEST(EngineTest, Example1TopSummaryIsExactAndExample1Shaped) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  SummaryList result = SummarizeChanges(source, target, Example1Options()).ValueOrDie();
  ASSERT_FALSE(result.summaries.empty());
  const ChangeSummary& top = result.summaries[0];
  // The paper: the Example-1 summary "incurs a very high score of 89%".
  EXPECT_NEAR(top.scores().accuracy, 1.0, 1e-9);
  EXPECT_GT(top.scores().score, 0.8);
  // It recovers the R1-R3 policy (partitions + coefficients).
  RecoveryReport recovery =
      EvaluateRecovery(MakeExample1Policy(), top, source).ValueOrDie();
  EXPECT_DOUBLE_EQ(recovery.rule_recall, 1.0);
  EXPECT_DOUBLE_EQ(recovery.rule_precision, 1.0);
}

TEST(EngineTest, ReturnsTopNRankedDescending) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options = Example1Options();
  options.top_n = 5;
  SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
  EXPECT_EQ(result.summaries.size(), 5u);
  for (size_t i = 1; i < result.summaries.size(); ++i) {
    EXPECT_GE(result.summaries[i - 1].scores().score + 1e-9,
              result.summaries[i].scores().score);
  }
}

TEST(EngineTest, DeterministicAcrossRuns) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  SummaryList a = SummarizeChanges(source, target, Example1Options()).ValueOrDie();
  SummaryList b = SummarizeChanges(source, target, Example1Options()).ValueOrDie();
  ASSERT_EQ(a.summaries.size(), b.summaries.size());
  for (size_t i = 0; i < a.summaries.size(); ++i) {
    EXPECT_EQ(a.summaries[i].Signature(), b.summaries[i].Signature());
    EXPECT_DOUBLE_EQ(a.summaries[i].scores().score, b.summaries[i].scores().score);
  }
}

TEST(EngineTest, SummariesAreDeduplicated) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options = Example1Options();
  options.top_n = 100;
  SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
  std::set<std::string> signatures;
  for (const auto& summary : result.summaries) {
    EXPECT_TRUE(signatures.insert(summary.Signature()).second)
        << "duplicate: " << summary.Signature();
  }
  EXPECT_GE(result.candidates_evaluated,
            static_cast<int64_t>(result.summaries.size()));
}

TEST(EngineTest, EverySummaryHasAModelTree) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  SummaryList result = SummarizeChanges(source, target, Example1Options()).ValueOrDie();
  for (const auto& summary : result.summaries) {
    ASSERT_NE(summary.tree(), nullptr);
    EXPECT_EQ(summary.tree()->num_leaves(), summary.num_cts());
    EXPECT_FALSE(summary.tree()->Render().empty());
  }
}

TEST(EngineTest, AppliedTopSummaryReconstructsTarget) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  SummaryList result = SummarizeChanges(source, target, Example1Options()).ValueOrDie();
  std::vector<double> y_hat = result.summaries[0].Apply(source).ValueOrDie();
  std::vector<double> y_new = *target.ColumnAsDoubles("bonus");
  for (size_t i = 0; i < y_hat.size(); ++i) {
    EXPECT_NEAR(y_hat[i], y_new[i], 1e-6) << "row " << i;
  }
}

TEST(EngineTest, AttributeOverridesAreHonoured) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options = Example1Options();
  options.condition_attributes = {"gen"};
  options.transform_attributes = {"salary"};
  SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
  EXPECT_EQ(result.setup.ConditionNames(), (std::vector<std::string>{"gen"}));
  EXPECT_EQ(result.setup.TransformNames(), (std::vector<std::string>{"salary"}));
  for (const auto& summary : result.summaries) {
    for (const auto& ct : summary.cts()) {
      std::vector<std::string> cols;
      ct.condition->CollectColumns(&cols);
      for (const auto& col : cols) EXPECT_EQ(col, "gen");
    }
  }
}

TEST(EngineTest, BadOverridesRejected) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options = Example1Options();
  options.condition_attributes = {"no_such_column"};
  EXPECT_TRUE(SummarizeChanges(source, target, options).status().IsNotFound());
  CharlesOptions options2 = Example1Options();
  options2.transform_attributes = {"edu"};  // non-numeric
  EXPECT_TRUE(SummarizeChanges(source, target, options2).status().IsTypeError());
}

TEST(EngineTest, OptionValidationErrors) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options = Example1Options();
  options.alpha = 1.5;
  EXPECT_TRUE(SummarizeChanges(source, target, options).status().IsOutOfRange());
  CharlesOptions no_target;
  no_target.key_columns = {"name"};
  EXPECT_TRUE(SummarizeChanges(source, target, no_target).status().IsInvalidArgument());
}

TEST(EngineTest, AlphaZeroFavoursSmallSummaries) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions interp = Example1Options();
  interp.alpha = 0.0;
  SummaryList result = SummarizeChanges(source, target, interp).ValueOrDie();
  // With accuracy ignored, the single-CT summaries must win.
  EXPECT_EQ(result.summaries[0].num_cts(), 1);
}

TEST(EngineTest, AlphaOneFavoursExactSummaries) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions acc = Example1Options();
  acc.alpha = 1.0;
  SummaryList result = SummarizeChanges(source, target, acc).ValueOrDie();
  EXPECT_NEAR(result.summaries[0].scores().accuracy, 1.0, 1e-9);
}

TEST(EngineTest, MontgomeryPolicyRecovered) {
  MontgomeryGenOptions gen;
  gen.num_rows = 1500;
  Table source = GenerateMontgomery2016(gen).ValueOrDie();
  Table target = GenerateMontgomery2017(source).ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "base_salary";
  options.key_columns = {"employee_id"};
  SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
  ASSERT_FALSE(result.summaries.empty());
  // The top summary must explain nearly all change mass.
  EXPECT_GT(result.summaries[0].scores().accuracy, 0.95);
}

TEST(EngineTest, BillionairesIndustryPolicyRecovered) {
  BillionairesGenOptions gen;
  gen.num_rows = 800;
  Table source = GenerateBillionaires(gen).ValueOrDie();
  Table target = MakeMarketPolicy().Apply(source).ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "net_worth";
  options.key_columns = {"person_id"};
  SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
  const ChangeSummary& top = result.summaries[0];
  EXPECT_GT(top.scores().accuracy, 0.9);
  // Industry must appear in the winning conditions.
  bool mentions_industry = false;
  for (const auto& ct : top.cts()) {
    std::vector<std::string> cols;
    ct.condition->CollectColumns(&cols);
    for (const auto& col : cols) {
      if (col == "industry") mentions_industry = true;
    }
  }
  EXPECT_TRUE(mentions_industry);
}

TEST(EngineTest, IdenticalSnapshotsYieldNoChangeSummary) {
  Table source = MakeExample1Source().ValueOrDie();
  SummaryList result = SummarizeChanges(source, source, Example1Options()).ValueOrDie();
  ASSERT_FALSE(result.summaries.empty());
  const ChangeSummary& top = result.summaries[0];
  EXPECT_EQ(top.num_cts(), 1);
  EXPECT_TRUE(top.cts()[0].transform.is_no_change());
  EXPECT_DOUBLE_EQ(top.scores().accuracy, 1.0);
}

TEST(EngineTest, SearchSpaceDiagnosticsPopulated) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  SummaryList result = SummarizeChanges(source, target, Example1Options()).ValueOrDie();
  EXPECT_GT(result.condition_subsets, 0);
  EXPECT_GT(result.transform_subsets, 0);
  EXPECT_GT(result.candidates_evaluated, 0);
  EXPECT_GE(result.elapsed_seconds, 0.0);
}

}  // namespace
}  // namespace charles
