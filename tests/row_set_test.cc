#include "table/row_set.h"

#include <gtest/gtest.h>

namespace charles {
namespace {

TEST(RowSetTest, ConstructionSortsAndDedupes) {
  RowSet set({5, 1, 3, 1, 5});
  EXPECT_EQ(set.size(), 3);
  EXPECT_EQ(set.indices(), (std::vector<int64_t>{1, 3, 5}));
}

TEST(RowSetTest, AllAndContains) {
  RowSet all = RowSet::All(4);
  EXPECT_EQ(all.size(), 4);
  EXPECT_TRUE(all.Contains(0));
  EXPECT_TRUE(all.Contains(3));
  EXPECT_FALSE(all.Contains(4));
  EXPECT_FALSE(all.Contains(-1));
}

TEST(RowSetTest, FromMask) {
  RowSet set = RowSet::FromMask({true, false, true, false, true});
  EXPECT_EQ(set.indices(), (std::vector<int64_t>{0, 2, 4}));
}

TEST(RowSetTest, SetAlgebra) {
  RowSet a({1, 2, 3, 4});
  RowSet b({3, 4, 5});
  EXPECT_EQ(a.Intersect(b).indices(), (std::vector<int64_t>{3, 4}));
  EXPECT_EQ(a.Union(b).indices(), (std::vector<int64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(a.Difference(b).indices(), (std::vector<int64_t>{1, 2}));
}

TEST(RowSetTest, ComplementPartitions) {
  RowSet a({0, 2});
  RowSet complement = a.Complement(5);
  EXPECT_EQ(complement.indices(), (std::vector<int64_t>{1, 3, 4}));
  EXPECT_EQ(a.Union(complement), RowSet::All(5));
  EXPECT_TRUE(a.Intersect(complement).empty());
}

TEST(RowSetTest, Coverage) {
  EXPECT_DOUBLE_EQ(RowSet({0, 1}).Coverage(8), 0.25);
  EXPECT_DOUBLE_EQ(RowSet().Coverage(8), 0.0);
  EXPECT_DOUBLE_EQ(RowSet({0}).Coverage(0), 0.0);
}

TEST(RowSetTest, EmptyBehaviour) {
  RowSet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.Union(RowSet({1})).size(), 1);
  EXPECT_TRUE(empty.Intersect(RowSet({1})).empty());
  EXPECT_EQ(RowSet::All(0).size(), 0);
}

TEST(RowSetTest, ToStringTruncates) {
  RowSet set = RowSet::All(100);
  std::string text = set.ToString(4);
  EXPECT_NE(text.find("+96"), std::string::npos);
}

TEST(RowSetTest, PositionsInRangeFindsTheSlice) {
  RowSet set({2, 5, 9, 14, 20});
  auto [lo, hi] = set.PositionsInRange(5, 20);  // half-open: 20 excluded
  EXPECT_EQ(lo, 1);
  EXPECT_EQ(hi, 4);
  auto [empty_lo, empty_hi] = set.PositionsInRange(10, 14);
  EXPECT_EQ(empty_lo, empty_hi);
  auto [all_lo, all_hi] = set.PositionsInRange(0, 100);
  EXPECT_EQ(all_lo, 0);
  EXPECT_EQ(all_hi, set.size());
}

TEST(RowSetTest, RestrictMaterializesTheSliceAndAgreesWithIntersect) {
  RowSet set({2, 5, 9, 14, 20});
  EXPECT_EQ(set.Restrict(5, 20), RowSet({5, 9, 14}));
  EXPECT_TRUE(set.Restrict(10, 14).empty());
  EXPECT_EQ(set.Restrict(0, 100), set);
  // Restrict(b, e) is exactly Intersect with the contiguous set [b, e).
  RowSet range({5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19});
  EXPECT_EQ(set.Restrict(5, 20), set.Intersect(range));
}

}  // namespace
}  // namespace charles
