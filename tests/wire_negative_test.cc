/// \file
/// Negative and fuzz coverage of every remote-path wire format (ISSUE 6
/// satellite): CTK1 tasks, CST1 results, CSI1 install bundles and execute
/// requests must reject malformed, truncated, over-length and wrong-version
/// bytes with a clean Status — never a crash or an unbounded allocation —
/// for all three task kinds.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "distributed/backend.h"
#include "distributed/remote_protocol.h"
#include "distributed/shard_planner.h"
#include "table/row_set.h"

namespace charles {
namespace {

// Byte offsets fixed by the wire layouts (native-endian i64 fields):
//   CTK1: magic[0,4) kind[4,12) leaf-count[12,20) ...
//   CST1: magic[0,4) kind[4,12) shard[12,20) rows[20,28) blocks[28,36)
//         elapsed[36,44) leaf-count[44,52) ...
//   CSI1: magic[0,4) epoch[4,12) num_rows[12,20) block_rows[20,28)
//         shard-count[28,36) 5×i64 per shard | shortlist-count ...
constexpr size_t kTaskKindOffset = 4;
constexpr size_t kTaskLeafCountOffset = 12;
constexpr size_t kResultKindOffset = 4;
constexpr size_t kResultLeafCountOffset = 44;
constexpr size_t kInstallShardCountOffset = 28;

struct SyntheticInput {
  std::vector<std::string> shortlist;
  ColumnCache columns;
  std::vector<double> y_old;
  std::vector<double> y_new;
  std::vector<RowSet> leaf_storage;
  ShardInput input;
};

SyntheticInput MakeSyntheticInput(int64_t rows) {
  SyntheticInput s;
  s.shortlist = {"a", "b"};
  std::vector<double> a(static_cast<size_t>(rows)), b(static_cast<size_t>(rows));
  s.y_old.resize(static_cast<size_t>(rows));
  s.y_new.resize(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    size_t i = static_cast<size_t>(r);
    a[i] = 1000.0 + 3.0 * static_cast<double>(r);
    b[i] = 50.0 - 0.25 * static_cast<double>(r % 97);
    s.y_old[i] = 10.0 + 0.5 * a[i];
    s.y_new[i] = (r % 3 == 0) ? s.y_old[i] : 1.05 * s.y_old[i] + 2.0 * b[i];
  }
  s.columns.Insert("a", std::move(a));
  s.columns.Insert("b", std::move(b));
  std::vector<int64_t> stride;
  for (int64_t r = 0; r < rows; r += 3) stride.push_back(r);
  s.leaf_storage.push_back(RowSet::All(rows));
  s.leaf_storage.push_back(RowSet(std::move(stride)));
  s.input.shortlist = &s.shortlist;
  s.input.columns = &s.columns;
  s.input.y_old = &s.y_old;
  s.input.y_new = &s.y_new;
  for (const RowSet& leaf : s.leaf_storage) s.input.leaves.push_back(&leaf);
  return s;
}

std::vector<ShardTask> AllTaskKinds(const ShardInput& input) {
  std::vector<ShardTask> tasks;
  ShardTask moments;
  moments.kind = ShardTaskKind::kLeafMoments;
  for (size_t l = 0; l < input.leaves.size(); ++l) {
    moments.leaves.push_back(static_cast<int64_t>(l));
  }
  tasks.push_back(moments);
  ShardTask signal;
  signal.kind = ShardTaskKind::kSignalStats;
  tasks.push_back(signal);
  ShardTask errors;
  errors.kind = ShardTaskKind::kErrorPartials;
  ErrorProbe probe;
  probe.leaf = 1;
  probe.features = {0, 1};
  probe.intercept = -3.0;
  probe.coefficients = {0.5, 2.0};
  errors.probes.push_back(probe);
  tasks.push_back(errors);
  ShardTask scores;
  scores.kind = ShardTaskKind::kScorePartials;
  scores.score_tolerance = 0.125;
  scores.probes.push_back(probe);
  tasks.push_back(scores);
  return tasks;
}

void PatchInt64(std::string* wire, size_t offset, int64_t value) {
  ASSERT_LE(offset + sizeof(value), wire->size());
  std::memcpy(&(*wire)[offset], &value, sizeof(value));
}

// --- CTK1 tasks -------------------------------------------------------------

TEST(WireNegativeTest, TaskEveryStrictPrefixRejectedForAllKinds) {
  SyntheticInput s = MakeSyntheticInput(60);
  for (const ShardTask& task : AllTaskKinds(s.input)) {
    std::string wire;
    task.SerializeTo(&wire);
    ASSERT_TRUE(ShardTask::Deserialize(wire.data(), wire.size()).ok());
    for (size_t len = 0; len < wire.size(); ++len) {
      EXPECT_TRUE(ShardTask::Deserialize(wire.data(), len).status().IsIOError())
          << ShardTaskKindName(task.kind) << " prefix " << len;
    }
    // One trailing byte is as malformed as one missing byte.
    std::string trailing = wire + "!";
    EXPECT_TRUE(ShardTask::Deserialize(trailing.data(), trailing.size())
                    .status()
                    .IsIOError())
        << ShardTaskKindName(task.kind);
  }
}

TEST(WireNegativeTest, TaskWrongVersionMagicRejected) {
  SyntheticInput s = MakeSyntheticInput(60);
  for (const ShardTask& task : AllTaskKinds(s.input)) {
    std::string wire;
    task.SerializeTo(&wire);
    // A future "CTK2" (or garbled) magic must fail loudly, not mis-parse.
    for (char version : {'2', '0', 'X'}) {
      std::string skewed = wire;
      skewed[3] = version;
      EXPECT_TRUE(ShardTask::Deserialize(skewed.data(), skewed.size())
                      .status()
                      .IsIOError())
          << ShardTaskKindName(task.kind) << " magic byte '" << version << "'";
    }
  }
}

TEST(WireNegativeTest, TaskInvalidKindRejected) {
  SyntheticInput s = MakeSyntheticInput(60);
  std::string wire;
  AllTaskKinds(s.input)[0].SerializeTo(&wire);
  for (int64_t kind : {int64_t{0}, int64_t{5}, int64_t{-1}, int64_t{1} << 40}) {
    std::string skewed = wire;
    PatchInt64(&skewed, kTaskKindOffset, kind);
    EXPECT_TRUE(ShardTask::Deserialize(skewed.data(), skewed.size())
                    .status()
                    .IsIOError())
        << "kind " << kind;
  }
}

TEST(WireNegativeTest, TaskHugeCountsRejectedBeforeAllocation) {
  SyntheticInput s = MakeSyntheticInput(60);
  std::vector<ShardTask> tasks = AllTaskKinds(s.input);
  // Moments task: leaf-index vector count.
  std::string moments;
  tasks[0].SerializeTo(&moments);
  for (int64_t count : {int64_t{1} << 60, int64_t{-1}}) {
    std::string skewed = moments;
    PatchInt64(&skewed, kTaskLeafCountOffset, count);
    EXPECT_TRUE(ShardTask::Deserialize(skewed.data(), skewed.size())
                    .status()
                    .IsIOError())
        << "leaf count " << count;
  }
  // Error task: its leaf vector is empty, so the probe count sits right
  // after it (magic 4 | kind 8 | empty vector 8 = offset 20).
  std::string errors;
  tasks[2].SerializeTo(&errors);
  for (int64_t count : {int64_t{1} << 60, int64_t{-1}}) {
    std::string skewed = errors;
    PatchInt64(&skewed, kTaskLeafCountOffset + sizeof(int64_t), count);
    EXPECT_TRUE(ShardTask::Deserialize(skewed.data(), skewed.size())
                    .status()
                    .IsIOError())
        << "probe count " << count;
  }
}

// --- CST1 results -----------------------------------------------------------

TEST(WireNegativeTest, ResultEveryStrictPrefixRejectedForAllKinds) {
  SyntheticInput s = MakeSyntheticInput(150);
  ShardPlan plan = PlanShards(150, 64, 2);
  for (const ShardTask& task : AllTaskKinds(s.input)) {
    ShardTaskResult result =
        ExecuteShardTaskKernel(s.input, plan, 0, task).ValueOrDie();
    std::string wire;
    result.SerializeTo(&wire);
    ASSERT_TRUE(ShardTaskResult::Deserialize(wire.data(), wire.size()).ok());
    for (size_t len = 0; len < wire.size(); ++len) {
      EXPECT_TRUE(
          ShardTaskResult::Deserialize(wire.data(), len).status().IsIOError())
          << ShardTaskKindName(task.kind) << " prefix " << len;
    }
    std::string trailing = wire + "!";
    EXPECT_TRUE(ShardTaskResult::Deserialize(trailing.data(), trailing.size())
                    .status()
                    .IsIOError())
        << ShardTaskKindName(task.kind);
  }
}

TEST(WireNegativeTest, ResultWrongVersionMagicAndKindRejected) {
  SyntheticInput s = MakeSyntheticInput(150);
  ShardPlan plan = PlanShards(150, 64, 2);
  ShardTaskResult result =
      ExecuteShardTaskKernel(s.input, plan, 0, AllTaskKinds(s.input)[0])
          .ValueOrDie();
  std::string wire;
  result.SerializeTo(&wire);
  for (char version : {'2', '0', 'X'}) {
    std::string skewed = wire;
    skewed[3] = version;
    EXPECT_TRUE(ShardTaskResult::Deserialize(skewed.data(), skewed.size())
                    .status()
                    .IsIOError())
        << "magic byte '" << version << "'";
  }
  for (int64_t kind : {int64_t{0}, int64_t{5}, int64_t{-1}}) {
    std::string skewed = wire;
    PatchInt64(&skewed, kResultKindOffset, kind);
    EXPECT_TRUE(ShardTaskResult::Deserialize(skewed.data(), skewed.size())
                    .status()
                    .IsIOError())
        << "kind " << kind;
  }
}

TEST(WireNegativeTest, ResultHugeCountsRejectedBeforeAllocation) {
  SyntheticInput s = MakeSyntheticInput(150);
  ShardPlan plan = PlanShards(150, 64, 2);
  ShardTaskResult result =
      ExecuteShardTaskKernel(s.input, plan, 0, AllTaskKinds(s.input)[0])
          .ValueOrDie();
  std::string wire;
  result.SerializeTo(&wire);
  for (int64_t count : {int64_t{1} << 60, int64_t{-1}}) {
    std::string skewed = wire;
    PatchInt64(&skewed, kResultLeafCountOffset, count);
    EXPECT_TRUE(ShardTaskResult::Deserialize(skewed.data(), skewed.size())
                    .status()
                    .IsIOError())
        << "leaf count " << count;
  }
}

TEST(WireNegativeTest, ResultAlignedPatchSweepNeverCrashes) {
  // Stamp a hostile value over every 8-aligned field position, one at a
  // time: the deserializer may accept (the patch landed inside a double) or
  // reject, but it must never crash or allocate from an unvalidated count.
  SyntheticInput s = MakeSyntheticInput(150);
  ShardPlan plan = PlanShards(150, 64, 2);
  for (const ShardTask& task : AllTaskKinds(s.input)) {
    ShardTaskResult result =
        ExecuteShardTaskKernel(s.input, plan, 0, task).ValueOrDie();
    std::string wire;
    result.SerializeTo(&wire);
    for (int64_t hostile : {int64_t{1} << 60, int64_t{-1}}) {
      for (size_t offset = 4; offset + sizeof(int64_t) <= wire.size();
           offset += sizeof(int64_t)) {
        std::string skewed = wire;
        std::memcpy(&skewed[offset], &hostile, sizeof(hostile));
        ShardTaskResult::Deserialize(skewed.data(), skewed.size())
            .status();  // outcome irrelevant; surviving the parse is the test
      }
    }
  }
}

// --- CSI1 install bundles ---------------------------------------------------

TEST(WireNegativeTest, InstallBundleEveryStrictPrefixRejected) {
  SyntheticInput s = MakeSyntheticInput(80);
  ShardPlan plan = PlanShards(80, 64, 2);
  std::string bundle;
  ASSERT_TRUE(SerializeInstallInput(1, s.input, plan, &bundle).ok());
  ASSERT_TRUE(DeserializeInstallInput(bundle.data(), bundle.size()).ok());
  for (size_t len = 0; len < bundle.size(); ++len) {
    EXPECT_TRUE(
        DeserializeInstallInput(bundle.data(), len).status().IsIOError())
        << "prefix " << len;
  }
}

TEST(WireNegativeTest, InstallBundleHostilePatchesRejectedOrSurvived) {
  SyntheticInput s = MakeSyntheticInput(80);
  ShardPlan plan = PlanShards(80, 64, 2);
  std::string bundle;
  ASSERT_TRUE(SerializeInstallInput(1, s.input, plan, &bundle).ok());
  // Wrong-version magic.
  for (char version : {'2', '0'}) {
    std::string skewed = bundle;
    skewed[3] = version;
    EXPECT_TRUE(DeserializeInstallInput(skewed.data(), skewed.size())
                    .status()
                    .IsIOError());
  }
  // Hostile shard count, and the shortlist count right after the plan.
  size_t shortlist_count_offset =
      kInstallShardCountOffset + sizeof(int64_t) +
      static_cast<size_t>(plan.num_shards()) * 5 * sizeof(int64_t);
  for (size_t offset : {kInstallShardCountOffset, shortlist_count_offset}) {
    for (int64_t count : {int64_t{1} << 60, int64_t{-1}}) {
      std::string skewed = bundle;
      PatchInt64(&skewed, offset, count);
      EXPECT_TRUE(DeserializeInstallInput(skewed.data(), skewed.size())
                      .status()
                      .IsIOError())
          << "offset " << offset << " count " << count;
    }
  }
  // Full aligned sweep: reject or survive, never crash.
  for (int64_t hostile : {int64_t{1} << 60, int64_t{-1}}) {
    for (size_t offset = 4; offset + sizeof(int64_t) <= bundle.size();
         offset += sizeof(int64_t)) {
      std::string skewed = bundle;
      std::memcpy(&skewed[offset], &hostile, sizeof(hostile));
      DeserializeInstallInput(skewed.data(), skewed.size()).status();
    }
  }
}

// --- Execute requests -------------------------------------------------------

TEST(WireNegativeTest, ExecuteRequestTruncationAndGarbageRejected) {
  SyntheticInput s = MakeSyntheticInput(60);
  for (const ShardTask& task : AllTaskKinds(s.input)) {
    std::string request;
    SerializeExecuteRequest(3, 1, /*run_id=*/0xabcdef0123456789ull,
                            /*parent_span=*/7, /*traced=*/true, task, &request);
    RemoteTaskRequest parsed =
        ParseExecuteRequest(request.data(), request.size()).ValueOrDie();
    EXPECT_EQ(parsed.epoch, 3);
    EXPECT_EQ(parsed.shard, 1);
    EXPECT_EQ(parsed.run_id, 0xabcdef0123456789ull);
    EXPECT_EQ(parsed.parent_span, 7u);
    EXPECT_TRUE(parsed.traced);
    EXPECT_EQ(parsed.task.kind, task.kind);
    for (size_t len = 0; len < request.size(); ++len) {
      EXPECT_TRUE(
          ParseExecuteRequest(request.data(), len).status().IsIOError())
          << ShardTaskKindName(task.kind) << " prefix " << len;
    }
    std::string trailing = request + "!";
    EXPECT_TRUE(ParseExecuteRequest(trailing.data(), trailing.size())
                    .status()
                    .IsIOError());
  }
}

TEST(WireNegativeTest, ExecuteRequestHostileTracedFlagRejected) {
  // v3 layout: epoch i64 @0 | shard i64 @8 | run_id u64 @16 | parent u64 @24
  // | traced i32 @32 | CTK1. The traced flag is a strict 0/1: anything else
  // is a malformed frame, not a "truthy" value.
  SyntheticInput s = MakeSyntheticInput(60);
  ShardTask task = AllTaskKinds(s.input).front();
  std::string request;
  SerializeExecuteRequest(3, 1, /*run_id=*/1, /*parent_span=*/0,
                          /*traced=*/false, task, &request);
  constexpr size_t kTracedOffset = 32;
  for (int32_t hostile : {int32_t{2}, int32_t{-1}, int32_t{0x7fffffff}}) {
    std::string skewed = request;
    std::memcpy(&skewed[kTracedOffset], &hostile, sizeof(hostile));
    EXPECT_TRUE(ParseExecuteRequest(skewed.data(), skewed.size())
                    .status()
                    .IsIOError())
        << "traced = " << hostile;
  }
}

// --- Traced task replies ----------------------------------------------------

namespace {

/// One plausible traced reply: a real CST1 result plus two worker spans
/// (root + child) with annotations — the shape WorkerService ships.
std::string MakeTracedReply(const SyntheticInput& s) {
  ShardPlan plan = PlanShards(60, 64, 1);
  ShardTask task = AllTaskKinds(s.input).front();
  ShardTaskResult result =
      ExecuteShardTaskKernel(s.input, plan, 0, task).ValueOrDie();
  std::vector<obs::SpanRecord> spans(2);
  spans[0].id = 1;
  spans[0].parent = 0;
  spans[0].name = "worker:task";
  spans[0].start_ns = 0;
  spans[0].dur_ns = 5000;
  spans[0].annotations.emplace_back("shard", "0");
  spans[1].id = 2;
  spans[1].parent = 1;
  spans[1].name = "fold";
  spans[1].start_ns = 100;
  spans[1].dur_ns = 4000;
  std::string reply;
  SerializeTracedTaskResult(result, spans, &reply);
  return reply;
}

}  // namespace

TEST(WireNegativeTest, TracedReplyRoundTripAndTruncationRejected) {
  SyntheticInput s = MakeSyntheticInput(60);
  std::string reply = MakeTracedReply(s);
  TracedTaskReply parsed =
      ParseTracedTaskReply(reply.data(), reply.size()).ValueOrDie();
  ASSERT_EQ(parsed.spans.size(), 2u);
  EXPECT_EQ(parsed.spans[0].name, "worker:task");
  EXPECT_EQ(parsed.spans[1].parent, 1u);
  ASSERT_EQ(parsed.spans[0].annotations.size(), 1u);
  EXPECT_EQ(parsed.spans[0].annotations[0].first, "shard");

  for (size_t len = 0; len < reply.size(); ++len) {
    EXPECT_TRUE(ParseTracedTaskReply(reply.data(), len).status().IsIOError())
        << "prefix " << len;
  }
  std::string trailing = reply + "!";
  EXPECT_TRUE(ParseTracedTaskReply(trailing.data(), trailing.size())
                  .status()
                  .IsIOError());
}

TEST(WireNegativeTest, TracedReplyHostileCountsRejectedOrSurvived) {
  SyntheticInput s = MakeSyntheticInput(60);
  std::string reply = MakeTracedReply(s);
  // Hostile values in every aligned i64 slot: the parser must reject or
  // survive (bounded allocation), never crash or over-allocate. The span
  // count and annotation counts are bounded by the bytes actually present.
  for (int64_t hostile : {int64_t{1} << 60, int64_t{-1}}) {
    for (size_t offset = 0; offset + sizeof(int64_t) <= reply.size();
         offset += sizeof(int64_t)) {
      std::string skewed = reply;
      std::memcpy(&skewed[offset], &hostile, sizeof(hostile));
      ParseTracedTaskReply(skewed.data(), skewed.size()).status();
    }
  }
}

}  // namespace
}  // namespace charles
