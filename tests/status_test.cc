#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace charles {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::NotFound("missing row").message(), "missing row");
}

TEST(StatusTest, ToStringIncludesCategoryAndMessage) {
  Status s = Status::TypeError("expected int64");
  EXPECT_EQ(s.ToString(), "Type error: expected int64");
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::NotFound("key (3)").WithContext("diff");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "diff: key (3)");
}

TEST(StatusTest, WithContextIsNoOpOnOk) {
  EXPECT_TRUE(Status::OK().WithContext("anything").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    CHARLES_RETURN_NOT_OK(Status::IOError("disk gone"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsIOError());
  auto succeeds = []() -> Status {
    CHARLES_RETURN_NOT_OK(Status::OK());
    return Status::InvalidArgument("reached end");
  };
  EXPECT_TRUE(succeeds().IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r(Status::OK());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, ValueOrReturnsAlternativeOnError) {
  Result<int> bad(Status::NotFound("x"));
  EXPECT_EQ(bad.ValueOr(7), 7);
  Result<int> good(3);
  EXPECT_EQ(good.ValueOr(7), 3);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, AssignOrReturnMacroUnwraps) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("too big");
    return 10;
  };
  auto outer = [&](bool fail) -> Result<int> {
    CHARLES_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 11);
  EXPECT_TRUE(outer(true).status().IsOutOfRange());
}

}  // namespace
}  // namespace charles
