#include "core/scoring.h"

#include <gtest/gtest.h>

#include "workload/example1.h"

namespace charles {
namespace {

CharlesOptions DefaultOptions() {
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  return options;
}

/// A summary with one TRUE -> no-change CT over n rows.
ChangeSummary NoopSummary(int64_t n) {
  ConditionalTransform ct;
  ct.condition = MakeTrue();
  ct.transform = LinearTransform::NoChange("bonus");
  ct.rows = RowSet::All(n);
  ct.coverage = 1.0;
  return ChangeSummary({std::move(ct)}, "bonus");
}

TEST(ScorerTest, PerfectPredictionScoresAccuracyOne) {
  std::vector<double> y_old = {1, 2, 3};
  std::vector<double> y_new = {2, 4, 6};
  Scorer scorer(DefaultOptions(), y_old, y_new);
  EXPECT_DOUBLE_EQ(scorer.Accuracy(y_new), 1.0);
}

TEST(ScorerTest, DoNothingScoresAccuracyZero) {
  std::vector<double> y_old = {1, 2, 3};
  std::vector<double> y_new = {2, 4, 6};
  Scorer scorer(DefaultOptions(), y_old, y_new);
  EXPECT_DOUBLE_EQ(scorer.Accuracy(y_old), 0.0);
}

TEST(ScorerTest, HalfExplainedScoresQuarter) {
  // L1-explained is 0.5, exactness 0: the blend gives 0.25. Being close on
  // average is worth less than being right (paper's R4 vs R1-R3 contrast).
  std::vector<double> y_old = {0, 0};
  std::vector<double> y_new = {10, 10};
  Scorer scorer(DefaultOptions(), y_old, y_new);
  EXPECT_DOUBLE_EQ(scorer.Accuracy({5, 5}), 0.25);
}

TEST(ScorerTest, ExactnessRewardsRowwiseCorrectSummaries) {
  std::vector<double> y_old = {0, 0, 0, 0};
  std::vector<double> y_new = {10, 10, 10, 10};
  Scorer scorer(DefaultOptions(), y_old, y_new);
  // Exactly right on half the rows, untouched on the rest:
  // L1-explained 0.5, exactness 0.5 -> 0.5.
  EXPECT_DOUBLE_EQ(scorer.Accuracy({10, 10, 0, 0}), 0.5);
  // Close-but-wrong everywhere with the same L1: scores lower.
  EXPECT_DOUBLE_EQ(scorer.Accuracy({5, 5, 5, 5}), 0.25);
}

TEST(ScorerTest, OvershootClampsToZero) {
  std::vector<double> y_old = {0};
  std::vector<double> y_new = {10};
  Scorer scorer(DefaultOptions(), y_old, y_new);
  EXPECT_DOUBLE_EQ(scorer.Accuracy({-20}), 0.0);
}

TEST(ScorerTest, IdenticalSnapshotsRewardNoChange) {
  std::vector<double> y = {5, 5, 5};
  Scorer scorer(DefaultOptions(), y, y);
  EXPECT_DOUBLE_EQ(scorer.Accuracy(y), 1.0);
  EXPECT_LT(scorer.Accuracy({50, 50, 50}), 0.5);
}

TEST(ScorerTest, AlphaTradesOffComponents) {
  std::vector<double> y_old = {1, 2, 3, 4};
  std::vector<double> y_new = {2, 4, 6, 8};
  ChangeSummary noop = NoopSummary(4);

  CharlesOptions acc_only = DefaultOptions();
  acc_only.alpha = 1.0;
  ScoreBreakdown b1 = Scorer(acc_only, y_old, y_new).Score(noop, y_old);
  EXPECT_DOUBLE_EQ(b1.score, 0.0);  // accuracy 0, weight 1

  CharlesOptions interp_only = DefaultOptions();
  interp_only.alpha = 0.0;
  ScoreBreakdown b2 = Scorer(interp_only, y_old, y_new).Score(noop, y_old);
  EXPECT_DOUBLE_EQ(b2.score, b2.interpretability);
  EXPECT_DOUBLE_EQ(b2.interpretability, 1.0);  // 1 CT, TRUE cond, no-change
}

TEST(ScorerTest, SmallerSummariesMoreInterpretable) {
  Table source = MakeExample1Source().ValueOrDie();
  std::vector<double> y_old = *source.ColumnAsDoubles("bonus");
  Scorer scorer(DefaultOptions(), y_old, y_old);

  ChangeSummary one_ct = NoopSummary(9);
  ChangeSummary three_cts(
      {
          [&] {
            ConditionalTransform ct;
            ct.condition = MakeColumnCompare("edu", CompareOp::kEq, Value("PhD"));
            ct.transform = LinearTransform::NoChange("bonus");
            ct.rows = RowSet({0, 1, 8});
            ct.coverage = 3.0 / 9;
            return ct;
          }(),
          [&] {
            ConditionalTransform ct;
            ct.condition = MakeColumnCompare("edu", CompareOp::kEq, Value("MS"));
            ct.transform = LinearTransform::NoChange("bonus");
            ct.rows = RowSet({2, 3, 5, 7});
            ct.coverage = 4.0 / 9;
            return ct;
          }(),
          [&] {
            ConditionalTransform ct;
            ct.condition = MakeColumnCompare("edu", CompareOp::kEq, Value("BS"));
            ct.transform = LinearTransform::NoChange("bonus");
            ct.rows = RowSet({4, 6});
            ct.coverage = 2.0 / 9;
            return ct;
          }(),
      },
      "bonus");
  double i1 = scorer.InterpretabilityOnly(one_ct).interpretability;
  double i3 = scorer.InterpretabilityOnly(three_cts).interpretability;
  EXPECT_GT(i1, i3);
}

TEST(ScorerTest, CoveragePenalizesPartialSummaries) {
  Table source = MakeExample1Source().ValueOrDie();
  std::vector<double> y_old = *source.ColumnAsDoubles("bonus");
  Scorer scorer(DefaultOptions(), y_old, y_old);
  ConditionalTransform partial;
  partial.condition = MakeColumnCompare("edu", CompareOp::kEq, Value("PhD"));
  partial.transform = LinearTransform::NoChange("bonus");
  partial.rows = RowSet({0, 1, 8});
  partial.coverage = 3.0 / 9;
  ChangeSummary summary({partial}, "bonus");
  ScoreBreakdown b = scorer.InterpretabilityOnly(summary);
  EXPECT_NEAR(b.coverage, 3.0 / 9, 1e-12);
}

TEST(ScorerTest, UglyConstantsLowerNormality) {
  std::vector<double> y = {1, 2};
  Scorer scorer(DefaultOptions(), y, y);
  auto summary_with_coef = [&](double coef) {
    LinearModel model;
    model.feature_names = {"bonus"};
    model.coefficients = {coef};
    ConditionalTransform ct;
    ct.condition = MakeTrue();
    ct.transform = LinearTransform::Linear("bonus", std::move(model));
    ct.rows = RowSet::All(2);
    ct.coverage = 1.0;
    return ChangeSummary({std::move(ct)}, "bonus");
  };
  double nice = scorer.InterpretabilityOnly(summary_with_coef(1.05)).normality;
  double ugly = scorer.InterpretabilityOnly(summary_with_coef(1.0537)).normality;
  EXPECT_GT(nice, ugly);
}

TEST(ScorerTest, ApplyAndScoreMatchesManualApply) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  std::vector<double> y_old = *source.ColumnAsDoubles("bonus");
  std::vector<double> y_new = *target.ColumnAsDoubles("bonus");
  Scorer scorer(DefaultOptions(), y_old, y_new);
  ChangeSummary noop = NoopSummary(9);
  ScoreBreakdown via_apply = scorer.ApplyAndScore(noop, source).ValueOrDie();
  ScoreBreakdown direct = scorer.Score(noop, y_old);
  EXPECT_DOUBLE_EQ(via_apply.score, direct.score);
}

TEST(ScorerTest, EmptySummaryHasZeroCoverage) {
  std::vector<double> y = {1, 2};
  Scorer scorer(DefaultOptions(), y, y);
  ScoreBreakdown b = scorer.InterpretabilityOnly(ChangeSummary({}, "bonus"));
  EXPECT_DOUBLE_EQ(b.coverage, 0.0);
  EXPECT_DOUBLE_EQ(b.summary_size, 1.0);
}

}  // namespace
}  // namespace charles
