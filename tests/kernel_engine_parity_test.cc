/// \file
/// Engine-level kernel parity (ISSUE 7, batch dimension ISSUE 8): the
/// determinism contract end to end. kernel_backend=simd vs scalar — and
/// batch_fold off/auto/on — must produce bit-identical ranked summaries on
/// the employee and billionaires workloads at 1/4 threads and 1/8 shards,
/// for in-process and loopback-remote shard execution — the kernel and
/// batching seams compose with every other determinism layer (threading,
/// sharding, transport) without moving a bit.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "distributed/worker_service.h"
#include "linalg/kernels/kernel.h"
#include "workload/billionaires_gen.h"
#include "workload/employee_gen.h"
#include "workload/policy.h"

namespace charles {
namespace {

/// Byte- and bit-level equality of two ranked runs (the shard-parity
/// comparator: signatures, score/accuracy bits, rendered text, counters).
void ExpectIdenticalRuns(const SummaryList& expected, const SummaryList& actual) {
  ASSERT_EQ(expected.summaries.size(), actual.summaries.size());
  for (size_t i = 0; i < expected.summaries.size(); ++i) {
    const ChangeSummary& a = expected.summaries[i];
    const ChangeSummary& b = actual.summaries[i];
    EXPECT_EQ(a.Signature(), b.Signature()) << "rank " << i;
    double sa = a.scores().score, sb = b.scores().score;
    double aa = a.scores().accuracy, ab = b.scores().accuracy;
    EXPECT_EQ(std::memcmp(&sa, &sb, sizeof(double)), 0) << "rank " << i;
    EXPECT_EQ(std::memcmp(&aa, &ab, sizeof(double)), 0) << "rank " << i;
    EXPECT_EQ(a.ToString(), b.ToString()) << "rank " << i;
  }
  EXPECT_EQ(expected.labelings, actual.labelings);
  EXPECT_EQ(expected.partitions, actual.partitions);
  EXPECT_EQ(expected.candidates_evaluated, actual.candidates_evaluated);
  EXPECT_EQ(expected.candidates_deduped, actual.candidates_deduped);
}

struct Workload {
  Table source;
  Table target;
  CharlesOptions options;
};

Workload MakeEmployeeWorkload() {
  EmployeeGenOptions gen;
  gen.num_rows = 600;
  Workload w;
  w.source = GenerateEmployees(gen).ValueOrDie();
  w.target = MakeEmployeeBonusPolicy().Apply(w.source).ValueOrDie();
  w.options.target_attribute = "bonus";
  w.options.key_columns = {"emp_id"};
  // Small canonical blocks so 8 shards exist on 600 rows; the kernel works
  // per block, so small blocks also maximize tail-block coverage.
  w.options.stats_block_rows = 64;
  return w;
}

Workload MakeBillionairesWorkload() {
  BillionairesGenOptions gen;
  gen.num_rows = 700;
  Workload w;
  w.source = GenerateBillionaires(gen).ValueOrDie();
  w.target = MakeMarketPolicy().Apply(w.source).ValueOrDie();
  w.options.target_attribute = "net_worth";
  w.options.key_columns = {"person_id"};
  w.options.stats_block_rows = 64;
  return w;
}

/// The scalar-reference baseline: serial, unsharded, kernel_backend=scalar,
/// batch_fold=off — the cold per-leaf scalar fold every other configuration
/// must reproduce bit for bit.
SummaryList ScalarBaseline(const Workload& w) {
  CharlesOptions options = w.options;
  options.kernel_backend = "scalar";
  options.batch_fold = "off";
  options.num_threads = 1;
  SummaryList baseline = SummarizeChanges(w.source, w.target, options).ValueOrDie();
  EXPECT_EQ(baseline.kernel_used, "scalar");
  EXPECT_EQ(baseline.batched_blocks_staged, 0);
  return baseline;
}

/// kernel_used gains a "+batch" suffix exactly when blocks were staged:
/// never under "off"; under "auto"/"on" these workloads always have two or
/// more leaves sharing a block, so batching must have engaged.
void ExpectKernelUsed(const SummaryList& run, const std::string& kernel,
                      const std::string& batch) {
  if (batch == "off") {
    EXPECT_EQ(run.kernel_used, kernel) << batch;
    EXPECT_EQ(run.batched_blocks_staged, 0) << batch;
  } else {
    EXPECT_EQ(run.kernel_used, kernel + "+batch") << batch;
    EXPECT_GT(run.batched_blocks_staged, 0) << batch;
    EXPECT_GT(run.batch_leaves_per_block_max, 0) << batch;
  }
}

void RunThreadedKernelParity(const Workload& w) {
  SummaryList baseline = ScalarBaseline(w);
  ASSERT_FALSE(baseline.summaries.empty());
  const std::string simd_name = kernels::SimdKernel().name;
  for (int threads : {1, 4}) {
    for (const char* backend : {"scalar", "simd", "auto"}) {
      for (const char* batch : {"off", "auto", "on"}) {
        CharlesOptions options = w.options;
        options.kernel_backend = backend;
        options.batch_fold = batch;
        options.num_threads = threads;
        SummaryList run =
            SummarizeChanges(w.source, w.target, options).ValueOrDie();
        ExpectKernelUsed(
            run, std::string(backend) == "scalar" ? "scalar" : simd_name,
            batch);
        ExpectIdenticalRuns(baseline, run);
      }
    }
  }
}

void RunShardedKernelParity(const Workload& w) {
  SummaryList baseline = ScalarBaseline(w);
  ASSERT_FALSE(baseline.summaries.empty());
  for (int shards : {1, 8}) {
    for (const char* backend : {"scalar", "simd"}) {
      for (const char* batch : {"off", "auto", "on"}) {
        CharlesOptions options = w.options;
        options.kernel_backend = backend;
        options.batch_fold = batch;
        options.num_threads = 2;
        options.num_shards = shards;
        options.shard_backend = ShardBackendKind::kInProcess;
        SummaryList run =
            SummarizeChanges(w.source, w.target, options).ValueOrDie();
        EXPECT_EQ(run.shards_used, shards);
        ExpectKernelUsed(run, backend, batch);
        ExpectIdenticalRuns(baseline, run);
      }
    }
  }
}

TEST(EngineKernelParityTest, EmployeeThreadedBitIdenticalAcrossKernels) {
  RunThreadedKernelParity(MakeEmployeeWorkload());
}

TEST(EngineKernelParityTest, BillionairesThreadedBitIdenticalAcrossKernels) {
  RunThreadedKernelParity(MakeBillionairesWorkload());
}

TEST(EngineKernelParityTest, EmployeeShardedBitIdenticalAcrossKernels) {
  RunShardedKernelParity(MakeEmployeeWorkload());
}

TEST(EngineKernelParityTest, BillionairesShardedBitIdenticalAcrossKernels) {
  RunShardedKernelParity(MakeBillionairesWorkload());
}

// --- Loopback remote: the worker resolves its own kernel --------------------

void RunRemoteKernelParity(const Workload& w) {
  SummaryList baseline = ScalarBaseline(w);
  ASSERT_FALSE(baseline.summaries.empty());
  std::unique_ptr<LoopbackWorker> worker =
      LoopbackWorker::Start(WorkerServiceOptions{}).ValueOrDie();
  for (int shards : {1, 8}) {
    for (const char* backend : {"scalar", "simd"}) {
      for (const char* batch : {"off", "auto", "on"}) {
        CharlesOptions options = w.options;
        options.kernel_backend = backend;
        options.batch_fold = batch;
        options.num_threads = 2;
        options.num_shards = shards;
        options.shard_backend = ShardBackendKind::kRemote;
        options.remote_workers = {worker->endpoint()};
        SummaryList run =
            SummarizeChanges(w.source, w.target, options).ValueOrDie();
        EXPECT_EQ(run.shards_used, shards);
        EXPECT_GT(run.remote_tasks_dispatched, 0);
        EXPECT_EQ(run.remote_task_retries, 0);
        // The worker resolved its own kernel (auto), independent of the
        // coordinator's choice — the merge still reproduces the scalar
        // baseline's bits, which is the whole point of the kernel and
        // batch-fold contracts (the loopback worker shares this process,
        // so it does observe batch_fold; a true remote would resolve its
        // own, with the same bits either way).
        ExpectIdenticalRuns(baseline, run);
      }
    }
  }
}

TEST(KernelRemoteParityTest, EmployeeLoopbackBitIdenticalAcrossKernels) {
  RunRemoteKernelParity(MakeEmployeeWorkload());
}

TEST(KernelRemoteParityTest, BillionairesLoopbackBitIdenticalAcrossKernels) {
  RunRemoteKernelParity(MakeBillionairesWorkload());
}

}  // namespace
}  // namespace charles
