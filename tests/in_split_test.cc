#include <gtest/gtest.h>

#include "ml/decision_tree.h"
#include "table/table_builder.h"

namespace charles {
namespace {

/// Eight departments, three of which share one behaviour: exactly the shape
/// that needs a grouped IN-split (a depth-3 tree of equality splits cannot
/// carve out a 3-of-8 set and still split on anything else).
Table Departments(int per_dept) {
  Schema schema = Schema::Make({
                                   Field{"dept", TypeKind::kString, true},
                                   Field{"grade", TypeKind::kInt64, true},
                               })
                      .ValueOrDie();
  static const char* kDepts[] = {"POL", "FRS", "COR", "HHS",
                                 "DOT", "LIB", "FIN", "TEC"};
  TableBuilder builder(schema);
  for (int d = 0; d < 8; ++d) {
    for (int i = 0; i < per_dept; ++i) {
      CHARLES_CHECK_OK(builder.AppendRow(
          {Value(kDepts[d]), Value(static_cast<int64_t>(10 + (i * 7) % 26))}));
    }
  }
  return builder.Finish().ValueOrDie();
}

std::vector<int> PublicSafetyLabels(const Table& t) {
  std::vector<int> labels(static_cast<size_t>(t.num_rows()), 0);
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    std::string dept = t.GetValue(r, 0).str();
    labels[static_cast<size_t>(r)] =
        (dept == "POL" || dept == "FRS" || dept == "COR") ? 1 : 0;
  }
  return labels;
}

TEST(InSplitTest, GroupedSplitSeparatesValueSet) {
  Table t = Departments(10);
  std::vector<int> labels = PublicSafetyLabels(t);
  DecisionTreeOptions options;
  options.max_depth = 1;  // only an IN-split can do it in one level
  DecisionTree tree =
      DecisionTree::Fit(t, RowSet::All(t.num_rows()), {0}, labels, options).ValueOrDie();
  EXPECT_DOUBLE_EQ(tree.training_accuracy(), 1.0);
  EXPECT_EQ(tree.num_leaves(), 2);
  auto leaves = tree.Leaves();
  bool found_in = false;
  for (const auto& leaf : leaves) {
    std::string text = leaf.condition->ToString();
    // The positive IN leaf (the negated complement also mentions "IN").
    if (text.find(" IN (") != std::string::npos &&
        text.find("NOT") == std::string::npos) {
      found_in = true;
      EXPECT_EQ(leaf.majority_label, 1);
      EXPECT_EQ(leaf.rows.size(), 30);
      // The smaller of the two complementary sets is listed.
      EXPECT_EQ(text, "dept IN ('POL', 'FRS', 'COR')");
    }
  }
  EXPECT_TRUE(found_in) << "expected a dept IN (...) split";
}

TEST(InSplitTest, DisabledInSplitsFallBackToEquality) {
  Table t = Departments(10);
  std::vector<int> labels = PublicSafetyLabels(t);
  DecisionTreeOptions options;
  options.max_depth = 1;
  options.enable_in_splits = false;
  DecisionTree tree =
      DecisionTree::Fit(t, RowSet::All(t.num_rows()), {0}, labels, options).ValueOrDie();
  // A single equality split cannot reach 100% on a 3-of-8 grouping.
  EXPECT_LT(tree.training_accuracy(), 1.0);
  for (const auto& leaf : tree.Leaves()) {
    EXPECT_EQ(leaf.condition->ToString().find(" IN ("), std::string::npos);
  }
}

TEST(InSplitTest, ConditionsEvaluateToTheirPartitions) {
  Table t = Departments(6);
  std::vector<int> labels = PublicSafetyLabels(t);
  DecisionTreeOptions options;
  options.max_depth = 2;
  DecisionTree tree =
      DecisionTree::Fit(t, RowSet::All(t.num_rows()), {0, 1}, labels, options).ValueOrDie();
  for (const auto& leaf : tree.Leaves()) {
    RowSet filtered = FilterRows(t, *leaf.condition).ValueOrDie();
    EXPECT_EQ(filtered, leaf.rows) << leaf.condition->ToString();
  }
}

TEST(InSplitTest, MixedInAndNumericSplits) {
  // Label 2 needs dept IN {POL,FRS,COR}; labels 0/1 split on grade < 23
  // among the rest — the Montgomery policy shape.
  Table t = Departments(12);
  std::vector<int> labels(static_cast<size_t>(t.num_rows()), 0);
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    std::string dept = t.GetValue(r, 0).str();
    int64_t grade = t.GetValue(r, 1).int64();
    if (dept == "POL" || dept == "FRS" || dept == "COR") {
      labels[static_cast<size_t>(r)] = 2;
    } else {
      labels[static_cast<size_t>(r)] = grade >= 23 ? 1 : 0;
    }
  }
  DecisionTreeOptions options;
  options.max_depth = 2;
  DecisionTree tree =
      DecisionTree::Fit(t, RowSet::All(t.num_rows()), {0, 1}, labels, options).ValueOrDie();
  EXPECT_DOUBLE_EQ(tree.training_accuracy(), 1.0);
  EXPECT_EQ(tree.num_leaves(), 3);
}

TEST(InSplitTest, NegatedInConditionRendersAsNotIn) {
  Table t = Departments(8);
  std::vector<int> labels = PublicSafetyLabels(t);
  DecisionTreeOptions options;
  options.max_depth = 1;
  DecisionTree tree =
      DecisionTree::Fit(t, RowSet::All(t.num_rows()), {0}, labels, options).ValueOrDie();
  bool found_not_in = false;
  for (const auto& leaf : tree.Leaves()) {
    if (leaf.condition->ToString().find("NOT (") != std::string::npos) {
      found_not_in = true;
      EXPECT_EQ(leaf.majority_label, 0);
    }
  }
  EXPECT_TRUE(found_not_in);
}

}  // namespace
}  // namespace charles
