#include "expr/parser.h"

#include <gtest/gtest.h>

namespace charles {
namespace {

TEST(ParserTest, SimpleComparison) {
  ExprPtr e = ParseExpr("edu = 'PhD'").ValueOrDie();
  EXPECT_TRUE(e->Equals(*MakeColumnCompare("edu", CompareOp::kEq, Value("PhD"))));
}

TEST(ParserTest, AllOperators) {
  EXPECT_TRUE((*ParseExpr("x = 1"))->Equals(*MakeColumnCompare("x", CompareOp::kEq, Value(1))));
  EXPECT_TRUE((*ParseExpr("x == 1"))->Equals(*MakeColumnCompare("x", CompareOp::kEq, Value(1))));
  EXPECT_TRUE((*ParseExpr("x != 1"))->Equals(*MakeColumnCompare("x", CompareOp::kNe, Value(1))));
  EXPECT_TRUE((*ParseExpr("x <> 1"))->Equals(*MakeColumnCompare("x", CompareOp::kNe, Value(1))));
  EXPECT_TRUE((*ParseExpr("x < 1"))->Equals(*MakeColumnCompare("x", CompareOp::kLt, Value(1))));
  EXPECT_TRUE((*ParseExpr("x <= 1"))->Equals(*MakeColumnCompare("x", CompareOp::kLe, Value(1))));
  EXPECT_TRUE((*ParseExpr("x > 1"))->Equals(*MakeColumnCompare("x", CompareOp::kGt, Value(1))));
  EXPECT_TRUE((*ParseExpr("x >= 1"))->Equals(*MakeColumnCompare("x", CompareOp::kGe, Value(1))));
}

TEST(ParserTest, PrecedenceAndBindsTighterThanOr) {
  ExprPtr e = ParseExpr("a = 1 OR b = 2 AND c = 3").ValueOrDie();
  ExprPtr expected =
      MakeOr({MakeColumnCompare("a", CompareOp::kEq, Value(1)),
              MakeAnd({MakeColumnCompare("b", CompareOp::kEq, Value(2)),
                       MakeColumnCompare("c", CompareOp::kEq, Value(3))})});
  EXPECT_TRUE(e->Equals(*expected)) << e->ToString();
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  ExprPtr e = ParseExpr("(a = 1 OR b = 2) AND c = 3").ValueOrDie();
  ExprPtr expected =
      MakeAnd({MakeOr({MakeColumnCompare("a", CompareOp::kEq, Value(1)),
                       MakeColumnCompare("b", CompareOp::kEq, Value(2))}),
               MakeColumnCompare("c", CompareOp::kEq, Value(3))});
  EXPECT_TRUE(e->Equals(*expected)) << e->ToString();
}

TEST(ParserTest, NotAndNestedNot) {
  ExprPtr e = ParseExpr("NOT x = 1").ValueOrDie();
  EXPECT_TRUE(e->Equals(*MakeNot(MakeColumnCompare("x", CompareOp::kEq, Value(1)))));
  ExprPtr doubled = ParseExpr("NOT NOT x = 1").ValueOrDie();
  EXPECT_TRUE(
      doubled->Equals(*MakeNot(MakeNot(MakeColumnCompare("x", CompareOp::kEq, Value(1))))));
}

TEST(ParserTest, InList) {
  ExprPtr e = ParseExpr("dept IN ('POL', 'FRS', 'COR')").ValueOrDie();
  EXPECT_TRUE(e->Equals(*MakeIn("dept", {Value("POL"), Value("FRS"), Value("COR")})));
}

TEST(ParserTest, LiteralTypes) {
  EXPECT_TRUE((*ParseExpr("x = 5"))->Equals(*MakeColumnCompare("x", CompareOp::kEq, Value(5))));
  EXPECT_TRUE(
      (*ParseExpr("x = 5.5"))->Equals(*MakeColumnCompare("x", CompareOp::kEq, Value(5.5))));
  EXPECT_TRUE((*ParseExpr("x = -3"))->Equals(*MakeColumnCompare("x", CompareOp::kEq, Value(-3))));
  EXPECT_TRUE(
      (*ParseExpr("x = true"))->Equals(*MakeColumnCompare("x", CompareOp::kEq, Value(true))));
  EXPECT_TRUE((*ParseExpr("x = NULL"))
                  ->Equals(*MakeColumnCompare("x", CompareOp::kEq, Value::Null())));
}

TEST(ParserTest, EscapedStringLiteral) {
  ExprPtr e = ParseExpr("name = 'O''Brien'").ValueOrDie();
  EXPECT_TRUE(e->Equals(*MakeColumnCompare("name", CompareOp::kEq, Value("O'Brien"))));
}

TEST(ParserTest, BackquotedIdentifier) {
  ExprPtr e = ParseExpr("`base salary` > 50000").ValueOrDie();
  EXPECT_TRUE(e->Equals(*MakeColumnCompare("base salary", CompareOp::kGt, Value(50000))));
}

TEST(ParserTest, BareTrueIsUniversalCondition) {
  EXPECT_TRUE((*ParseExpr("TRUE"))->Equals(*MakeTrue()));
  EXPECT_TRUE((*ParseExpr("true"))->Equals(*MakeTrue()));
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  ExprPtr e = ParseExpr("a = 1 and not b = 2 or c in (3)").ValueOrDie();
  ExprPtr expected =
      MakeOr({MakeAnd({MakeColumnCompare("a", CompareOp::kEq, Value(1)),
                       MakeNot(MakeColumnCompare("b", CompareOp::kEq, Value(2)))}),
              MakeIn("c", {Value(3)})});
  EXPECT_TRUE(e->Equals(*expected)) << e->ToString();
}

TEST(ParserTest, ErrorsAreInvalidArgument) {
  EXPECT_TRUE(ParseExpr("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseExpr("x =").status().IsInvalidArgument());
  EXPECT_TRUE(ParseExpr("x = 1 extra").status().IsInvalidArgument());
  EXPECT_TRUE(ParseExpr("(x = 1").status().IsInvalidArgument());
  EXPECT_TRUE(ParseExpr("x = 'unterminated").status().IsInvalidArgument());
  EXPECT_TRUE(ParseExpr("x # 1").status().IsInvalidArgument());
  EXPECT_TRUE(ParseExpr("1 IN (2)").status().IsInvalidArgument());
}

/// Property: printing then parsing reproduces the tree.
class RoundTripProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripProperty, ParsePrintParseIsIdentity) {
  Result<ExprPtr> first = ParseExpr(GetParam());
  ASSERT_TRUE(first.ok()) << GetParam() << ": " << first.status().ToString();
  std::string printed = (*first)->ToString();
  Result<ExprPtr> second = ParseExpr(printed);
  ASSERT_TRUE(second.ok()) << printed << ": " << second.status().ToString();
  EXPECT_TRUE((*second)->Equals(**first)) << printed;
  EXPECT_EQ((*second)->ToString(), printed);  // printing is a fixed point
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, RoundTripProperty,
    ::testing::Values("TRUE", "x = 1", "edu = 'PhD'", "x >= 2.5 AND y < 10",
                      "a = 1 OR b = 2 AND c = 3", "(a = 1 OR b = 2) AND c = 3",
                      "NOT (x = 1 AND y = 2)", "dept IN ('POL', 'FRS')",
                      "name = 'O''Brien'", "x != -4.25",
                      "a = 1 AND b = 2 AND c = 3 AND d = 4",
                      "NOT x IN (1, 2, 3)", "flag = true AND other = false"));

}  // namespace
}  // namespace charles
