/// \file
/// Randomized (seeded, reproducible) property tests over the substrate:
/// CSV round-trips on arbitrary typed tables, and expression evaluation
/// consistency between the vectorized and row-at-a-time paths.

#include <gtest/gtest.h>

#include "common/random.h"
#include "csv/csv_reader.h"
#include "csv/csv_writer.h"
#include "expr/parser.h"
#include "table/table_builder.h"

namespace charles {
namespace {

/// A random table with mixed types, NULLs, and awkward string content.
Table RandomTable(uint64_t seed, int64_t rows) {
  Rng rng(seed);
  Schema schema = Schema::Make({
                                   Field{"id", TypeKind::kInt64, false},
                                   Field{"cat", TypeKind::kString, true},
                                   Field{"flag", TypeKind::kBool, true},
                                   Field{"x", TypeKind::kDouble, true},
                                   Field{"n", TypeKind::kInt64, true},
                               })
                      .ValueOrDie();
  static const std::vector<std::string> kAwkward = {
      "plain", "with,comma", "with \"quotes\"", "with\nnewline", "trailing ",
      " leading", "apostrophe's", ""};
  TableBuilder builder(schema);
  for (int64_t i = 0; i < rows; ++i) {
    Value cat = rng.Bernoulli(0.1) ? Value::Null() : Value(rng.Choice(kAwkward));
    Value flag = rng.Bernoulli(0.1) ? Value::Null() : Value(rng.Bernoulli(0.5));
    // Round doubles to 6 decimals so the textual round-trip is exact.
    Value x = rng.Bernoulli(0.1)
                  ? Value::Null()
                  : Value(std::round(rng.Uniform(-1e6, 1e6) * 1e6) / 1e6);
    Value n = rng.Bernoulli(0.1) ? Value::Null()
                                 : Value(rng.UniformInt(-1000000, 1000000));
    CHARLES_CHECK_OK(builder.AppendRow({Value(i), cat, flag, x, n}));
  }
  return builder.Finish().ValueOrDie();
}

class CsvRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripProperty, WriteReadPreservesValues) {
  Table original = RandomTable(GetParam(), 200);
  std::string csv = CsvWriter::WriteString(original);
  Table reread = CsvReader::ReadString(csv).ValueOrDie();
  ASSERT_EQ(reread.num_rows(), original.num_rows());
  ASSERT_EQ(reread.num_columns(), original.num_columns());
  for (int64_t r = 0; r < original.num_rows(); ++r) {
    for (int c = 0; c < original.num_columns(); ++c) {
      Value want = original.GetValue(r, c);
      Value got = reread.GetValue(r, c);
      // The empty string is indistinguishable from NULL in CSV (the default
      // null token); everything else must round-trip exactly.
      if (want.kind() == TypeKind::kString && want.str().empty()) {
        EXPECT_TRUE(got.is_null() || got == want);
        continue;
      }
      if (want.is_null()) {
        EXPECT_TRUE(got.is_null()) << "row " << r << " col " << c;
      } else {
        EXPECT_EQ(got, want) << "row " << r << " col " << c << " csv cell";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

/// Random condition over the random table's columns.
ExprPtr RandomCondition(Rng* rng) {
  auto leaf = [&]() -> ExprPtr {
    switch (rng->UniformInt(0, 3)) {
      case 0:
        return MakeColumnCompare("x", rng->Bernoulli(0.5) ? CompareOp::kLt : CompareOp::kGe,
                                 Value(rng->Uniform(-1e6, 1e6)));
      case 1:
        return MakeColumnCompare("n", rng->Bernoulli(0.5) ? CompareOp::kLe : CompareOp::kGt,
                                 Value(rng->UniformInt(-1000000, 1000000)));
      case 2:
        return MakeColumnCompare("cat", rng->Bernoulli(0.5) ? CompareOp::kEq : CompareOp::kNe,
                                 Value("plain"));
      default:
        return MakeIn("cat", {Value("with,comma"), Value("apostrophe's")});
    }
  };
  ExprPtr a = leaf();
  ExprPtr b = leaf();
  ExprPtr c = leaf();
  switch (rng->UniformInt(0, 3)) {
    case 0:
      return MakeAnd({a, b});
    case 1:
      return MakeOr({a, MakeAnd({b, c})});
    case 2:
      return MakeNot(MakeOr({a, b}));
    default:
      return MakeAnd({MakeNot(a), MakeOr({b, c})});
  }
}

class ExprConsistencyProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExprConsistencyProperty, VectorizedMatchesRowAtATime) {
  Table table = RandomTable(GetParam() * 31 + 7, 150);
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    ExprPtr condition = RandomCondition(&rng);
    RowSet filtered = FilterRows(table, *condition).ValueOrDie();
    for (int64_t r = 0; r < table.num_rows(); ++r) {
      Value v = condition->Evaluate(table, r).ValueOrDie();
      EXPECT_EQ(v.boolean(), filtered.Contains(r))
          << condition->ToString() << " at row " << r;
    }
  }
}

TEST_P(ExprConsistencyProperty, PrintParseRoundTripsRandomConditions) {
  Rng rng(GetParam() * 17 + 3);
  for (int trial = 0; trial < 50; ++trial) {
    ExprPtr condition = RandomCondition(&rng);
    std::string printed = condition->ToString();
    Result<ExprPtr> reparsed = ParseExpr(printed);
    ASSERT_TRUE(reparsed.ok()) << printed << ": " << reparsed.status().ToString();
    EXPECT_TRUE((*reparsed)->Equals(*condition)) << printed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprConsistencyProperty, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace charles
