#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "parallel/parallel_for.h"
#include "parallel/sharded_cache.h"

namespace charles {
namespace {

TEST(ThreadPoolTest, CompletesSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  std::future<int> bad =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  std::future<int> good = pool.Submit([]() { return 1; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(good.get(), 1);  // the pool survives a throwing task
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  for (int wave = 0; wave < 5; ++wave) {
    std::atomic<int> count{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 20; ++i) {
      futures.push_back(pool.Submit([&count]() { ++count; }));
    }
    for (auto& future : futures) future.get();
    EXPECT_EQ(count.load(), 20);
  }
}

TEST(ThreadPoolTest, DrainsPendingTasksOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count]() { ++count; });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(257);
  ParallelFor(&pool, 257, [&visits](int64_t i) { ++visits[static_cast<size_t>(i)]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForTest, SerialFallbackWithoutPool) {
  int64_t sum = 0;  // no synchronization: must run on the calling thread
  ParallelFor(nullptr, 100, [&sum](int64_t i) { sum += i; });
  EXPECT_EQ(sum, 4950);
}

TEST(ParallelForTest, PropagatesExceptionAfterAllTasksFinish) {
  ThreadPool pool(4);
  std::atomic<int> visited{0};
  EXPECT_THROW(ParallelFor(&pool, 64,
                           [&visited](int64_t i) {
                             ++visited;
                             if (i == 13) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  // Only the throwing chunk may cut its remaining indices short; every other
  // chunk runs to completion before the exception is rethrown.
  EXPECT_GE(visited.load(), 64 - 3);
  // And the pool is still usable for the next wave.
  std::atomic<int> second{0};
  ParallelFor(&pool, 32, [&second](int64_t) { ++second; });
  EXPECT_EQ(second.load(), 32);
}

TEST(ParallelMapTest, ResultsAreIndexOrdered) {
  ThreadPool pool(8);
  std::vector<int64_t> squares =
      ParallelMap<int64_t>(&pool, 1000, [](int64_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 1000u);
  for (int64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(squares[static_cast<size_t>(i)], i * i);
  }
}

TEST(ParallelMapTest, ParallelMatchesSerial) {
  auto fn = [](int64_t i) { return std::to_string(i * 3 + 1); };
  std::vector<std::string> serial = ParallelMap<std::string>(nullptr, 123, fn);
  ThreadPool pool(4);
  std::vector<std::string> parallel = ParallelMap<std::string>(&pool, 123, fn);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelMapWithStateTest, StatesCoverAllWorkAndMergeAtBarrier) {
  ThreadPool pool(4);
  std::vector<std::vector<int64_t>> states;
  std::vector<int64_t> results = ParallelMapWithState<int64_t, std::vector<int64_t>>(
      &pool, 100, []() { return std::vector<int64_t>(); },
      [](std::vector<int64_t>& state, int64_t i) {
        state.push_back(i);
        return i;
      },
      &states);
  for (int64_t i = 0; i < 100; ++i) EXPECT_EQ(results[static_cast<size_t>(i)], i);
  // Chunk states partition [0, 100) contiguously, in chunk order.
  std::vector<int64_t> seen;
  for (const auto& state : states) {
    for (int64_t i : state) seen.push_back(i);
  }
  std::vector<int64_t> expected(100);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(states.size(), 4u);
}

TEST(ParallelMapWithStateTest, SerialPathUsesOneState) {
  std::vector<int> states;
  ParallelMapWithState<int, int>(
      nullptr, 10, []() { return 0; },
      [](int& state, int64_t i) { return state += static_cast<int>(i); }, &states);
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0], 45);
}

TEST(ShardedCacheTest, InsertAndFind) {
  ShardedCache<int64_t, std::string> cache(8);
  EXPECT_EQ(cache.Find(1), nullptr);
  cache.Insert(1, "one");
  const std::string* found = cache.Find(1);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, "one");
  EXPECT_EQ(cache.Size(), 1u);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(ShardedCacheTest, FirstInsertWins) {
  ShardedCache<int64_t, std::string> cache(4);
  const std::string* first = cache.Insert(5, "first");
  const std::string* second = cache.Insert(5, "second");
  EXPECT_EQ(first, second);
  EXPECT_EQ(*second, "first");
  EXPECT_EQ(cache.Size(), 1u);
}

TEST(ShardedCacheTest, GetOrComputeComputesOncePerKey) {
  ShardedCache<int64_t, int64_t> cache(4);
  std::atomic<int> computes{0};
  for (int round = 0; round < 3; ++round) {
    const int64_t* value = cache.GetOrCompute(42, [&computes]() {
      ++computes;
      return int64_t{99};
    });
    EXPECT_EQ(*value, 99);
  }
  EXPECT_EQ(computes.load(), 1);
}

TEST(ShardedCacheTest, BoundedCacheEvictsLeastRecentlyUsed) {
  // Single shard so the bound is exact. Capacity 3: touching key 1 keeps it
  // alive while 2 (the least recently used) is evicted by the 4th insert.
  ShardedCache<int64_t, std::string> cache(1, 3);
  cache.Insert(1, "one");
  cache.Insert(2, "two");
  cache.Insert(3, "three");
  std::string out;
  EXPECT_TRUE(cache.Lookup(1, &out));  // 1 becomes most recent
  EXPECT_EQ(out, "one");
  cache.Insert(4, "four");
  EXPECT_EQ(cache.Size(), 3u);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_FALSE(cache.Lookup(2, &out));  // LRU victim
  EXPECT_TRUE(cache.Lookup(1, &out));
  EXPECT_TRUE(cache.Lookup(3, &out));
  EXPECT_TRUE(cache.Lookup(4, &out));
}

TEST(ShardedCacheTest, TrimToSizeShrinksUnboundedCache) {
  ShardedCache<int64_t, int64_t> cache(1);  // unbounded at construction
  for (int64_t k = 0; k < 10; ++k) cache.Insert(k, k * 10);
  int64_t out = 0;
  EXPECT_TRUE(cache.Lookup(0, &out));  // 0 is now the most recently used
  cache.TrimToSize(2);
  EXPECT_EQ(cache.Size(), 2u);
  EXPECT_EQ(cache.evictions(), 8);
  EXPECT_TRUE(cache.Lookup(0, &out));
  EXPECT_TRUE(cache.Lookup(9, &out));  // last insert survives too
  EXPECT_FALSE(cache.Lookup(5, &out));
}

TEST(ShardedCacheTest, PointersStableUnderConcurrentInserts) {
  ShardedCache<int64_t, int64_t> cache(16);
  const int64_t* early = cache.Insert(-1, -100);
  ThreadPool pool(4);
  ParallelFor(&pool, 4000, [&cache](int64_t i) {
    int64_t key = i % 1000;
    const int64_t* value = cache.GetOrCompute(key, [key]() { return key * 7; });
    if (*value != key * 7) {
      throw std::runtime_error("corrupted value for key " + std::to_string(key));
    }
  });
  EXPECT_EQ(cache.Size(), 1001u);
  EXPECT_EQ(*early, -100);  // still valid after 1000 inserts across shards
}

}  // namespace
}  // namespace charles
