/// \file
/// \brief The Forbes billionaires scenario the demo offers as an extra
/// dataset: summarize a year of net-worth changes by industry.
///
/// Run: ./build/examples/billionaires [num_rows]

#include <cstdio>
#include <cstdlib>

#include "core/charles.h"
#include "workload/billionaires_gen.h"

int main(int argc, char** argv) {
  using namespace charles;

  int64_t num_rows = 2000;
  if (argc > 1) num_rows = std::atoll(argv[1]);

  BillionairesGenOptions gen;
  gen.num_rows = num_rows;
  Table last_year = GenerateBillionaires(gen).ValueOrDie();
  Policy market = MakeMarketPolicy();
  Table this_year = market.Apply(last_year).ValueOrDie();

  std::printf("World's billionaires list, %lld entries\n",
              static_cast<long long>(num_rows));
  std::printf("latent market movement:\n%s\n", market.ToString().c_str());

  CharlesOptions options;
  options.target_attribute = "net_worth";
  options.key_columns = {"person_id"};

  Result<SummaryList> result = SummarizeChanges(last_year, this_year, options);
  if (!result.ok()) {
    std::fprintf(stderr, "ChARLES failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("top 3 summaries:\n");
  for (size_t i = 0; i < result->summaries.size() && i < 3; ++i) {
    std::printf("#%zu\n%s\n", i + 1, result->summaries[i].ToString().c_str());
  }
  std::printf("top summary as a model tree:\n%s\n",
              result->summaries[0].tree()->Render().c_str());

  RecoveryReport recovery =
      EvaluateRecovery(market, result->summaries[0], last_year).ValueOrDie();
  std::printf("recovery vs latent market policy: %s\n", recovery.ToString().c_str());
  return 0;
}
