/// \file
/// \brief 40-line happy path: summarize the paper's Example 1 with defaults.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "core/charles.h"
#include "workload/example1.h"

int main() {
  using namespace charles;

  // The two snapshots of Figure 1 (2016 and 2017 salary tables).
  Result<Table> source = MakeExample1Source();
  Result<Table> target = MakeExample1Target();
  if (!source.ok() || !target.ok()) {
    std::cerr << "failed to build toy data\n";
    return 1;
  }

  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  // Demo defaults: c = 3 condition attributes, t = 2 transformation
  // attributes, alpha = 0.5, top 10 summaries.

  Result<SummaryList> result = SummarizeChanges(*source, *target, options);
  if (!result.ok()) {
    std::cerr << "ChARLES failed: " << result.status().ToString() << "\n";
    return 1;
  }

  std::cout << "=== Attribute shortlists chosen by the setup assistant ===\n"
            << result->setup.ToString() << "\n";
  std::cout << "=== Top summary ===\n" << result->summaries[0].ToString() << "\n";
  std::cout << "=== As a linear model tree (Figure 2) ===\n"
            << result->summaries[0].tree()->Render() << "\n";
  std::cout << "=== All " << result->summaries.size() << " ranked summaries ===\n"
            << result->ToString();
  return 0;
}
