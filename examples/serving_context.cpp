/// \file
/// \brief The serving shape: one long-lived EngineContext answering repeated
/// queries, with streamed partial rankings.
///
/// Demonstrates the three pieces a service composes (docs/architecture.md,
/// "EngineContext lifecycle"):
///  - an EngineContext owning the thread pool and the cross-run leaf-fit
///    cache (cold first query, warm repeats with zero new fits);
///  - FindAsync() returning a future while the search runs;
///  - a SummaryStream delivering ranked partials before the future resolves.
///
/// Build & run:
///   cmake -B build && cmake --build build -j
///   ./build/example_serving_context

#include <chrono>
#include <cstdio>
#include <iostream>

#include "core/charles.h"
#include "workload/example1.h"

int main() {
  using namespace charles;

  Result<Table> source = MakeExample1Source();
  Result<Table> target = MakeExample1Target();
  if (!source.ok() || !target.ok()) {
    std::cerr << "failed to build toy data\n";
    return 1;
  }

  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};

  // The context outlives every request: pool spawned once, cache persistent.
  EngineContext context;
  CharlesEngine engine(options, &context);
  std::printf("context: %d worker thread(s)\n\n", context.num_threads());

  // --- Request 1: async + streaming. The callback fires on worker threads
  // while phase 3 is still sweeping (partition, T) shards.
  SummaryStream stream([](const SummaryStreamUpdate& update) {
    std::printf("  partial [%lld/%lld shards, %.3fs]: top score %.4f (%zu ranked)\n",
                static_cast<long long>(update.shards_completed),
                static_cast<long long>(update.shards_total),
                update.elapsed_seconds,
                update.provisional.empty() ? 0.0
                                           : update.provisional.front().scores().score,
                update.provisional.size());
  });
  std::printf("request 1 (cold, streaming):\n");
  auto future = engine.FindAsync(*source, *target, &stream);
  Result<SummaryList> first = future.get();
  if (!first.ok()) {
    std::cerr << "ChARLES failed: " << first.status().ToString() << "\n";
    return 1;
  }
  std::printf("resolved after %lld streamed updates; %lld leaf fits computed\n\n",
              static_cast<long long>(stream.updates_emitted()),
              static_cast<long long>(first->leaf_fits_computed));

  // --- Request 2: the same query, now answered from the warm context.
  std::printf("request 2 (warm, same query):\n");
  auto warm_start = std::chrono::steady_clock::now();
  Result<SummaryList> second = engine.Find(*source, *target);
  double warm_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - warm_start)
          .count();
  if (!second.ok()) {
    std::cerr << "ChARLES failed: " << second.status().ToString() << "\n";
    return 1;
  }
  std::printf("answered in %.3fs — %lld fits computed, %lld served from cache "
              "(%zu entries, %lld runs on this context)\n\n",
              warm_seconds, static_cast<long long>(second->leaf_fits_computed),
              static_cast<long long>(second->leaf_fits_reused),
              context.leaf_cache_entries(),
              static_cast<long long>(context.runs_completed()));

  bool identical = first->summaries.size() == second->summaries.size();
  for (size_t i = 0; identical && i < first->summaries.size(); ++i) {
    identical = first->summaries[i].Signature() == second->summaries[i].Signature();
  }
  std::printf("cold and warm rankings identical: %s\n\n", identical ? "yes" : "NO");
  std::cout << "=== Top summary ===\n" << second->summaries[0].ToString();
  return identical ? 0 : 1;
}
