/// \file
/// \brief The paper's demonstration (Figure 4, steps 1-10) as a CLI session.
///
/// The SIGMOD demo walks participants through ten numbered steps in a web
/// GUI; this program narrates the same ten steps against the same toy data,
/// ending with an ASCII rendition of step 10's partition visualization
/// (non-overlapping rectangles sized by coverage, hatched when unchanged).
///
/// Run: ./build/examples/demo_walkthrough

#include <cstdio>
#include <string>

#include "common/string_util.h"
#include "core/charles.h"
#include "workload/example1.h"

namespace {

using namespace charles;

void Step(int number, const std::string& title) {
  std::printf("\n(%d) %s\n%s\n", number, title.c_str(),
              std::string(title.size() + 6, '-').c_str());
}

/// Step 10's visualization: one rectangle per partition, width proportional
/// to coverage, hatched ("///") for no-change partitions.
void RenderPartitions(const ChangeSummary& summary) {
  const int kCanvasWidth = 66;
  for (const ConditionalTransform& ct : summary.cts()) {
    int width = std::max(6, static_cast<int>(ct.coverage * kCanvasWidth));
    std::string fill = ct.transform.is_no_change() ? "/" : "#";
    std::string bar;
    for (int i = 0; i < width; ++i) bar += fill;
    std::printf("  %s  %s%% of rows\n", PadRight(bar, kCanvasWidth).c_str(),
                FormatDouble(ct.coverage * 100.0, 1).c_str());
    std::printf("  condition: %s\n", ct.condition->ToString().c_str());
    std::printf("  transform: %s   (partition MAE %s)\n\n",
                ct.transform.ToString().c_str(),
                FormatDouble(ct.partition_mae, 2).c_str());
  }
  std::printf("  legend: #### transformed partition, //// no-change partition\n");
}

}  // namespace

int main() {
  std::printf("ChARLES demonstration walkthrough (paper Figure 4, steps 1-10)\n");
  std::printf("==============================================================\n");

  Step(1, "Uploading datasets");
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  std::printf("2016 snapshot:\n%s\n2017 snapshot:\n%s",
              source.ToString().c_str(), target.ToString().c_str());

  Step(2, "Selecting the target attribute");
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  std::printf("target attribute: bonus\n");

  Step(3, "Setting parameters");
  options.max_condition_attrs = 3;  // the demo's choices
  options.max_transform_attrs = 2;
  std::printf("max condition attributes (c) = %d\n", options.max_condition_attrs);
  std::printf("max transformation attributes (t) = %d\n", options.max_transform_attrs);

  // Steps 4-5 happen inside the engine; re-run the assistant standalone so
  // the narration can show its shortlists.
  Step(4, "ChARLES selects attributes for condition automatically");
  DiffOptions diff_options;
  diff_options.key_columns = options.key_columns;
  SnapshotDiff diff = SnapshotDiff::Compute(source, target, diff_options).ValueOrDie();
  SetupResult setup = SetupAssistant::Analyze(diff, options).ValueOrDie();
  for (const AttributeCandidate& c : setup.condition_candidates) {
    std::printf("  %-10s association %.3f%s\n", c.name.c_str(), c.association,
                c.above_threshold ? "" : "  (kept below threshold)");
  }

  Step(5, "ChARLES selects attributes for transformation automatically");
  for (const AttributeCandidate& c : setup.transform_candidates) {
    std::printf("  %-10s association %.3f\n", c.name.c_str(), c.association);
  }

  Step(6, "Tune score parameter alpha");
  options.alpha = 0.5;
  std::printf("alpha = %.1f (the default; lower favours interpretability)\n",
              options.alpha);

  Step(7, "Request change summaries");
  SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
  std::printf("diff discovery evaluated %lld candidate summaries in %.3fs\n",
              static_cast<long long>(result.candidates_evaluated),
              result.elapsed_seconds);

  Step(8, "Ranked list of summaries");
  std::printf("%s", result.ToString().c_str());

  Step(9, "Drill into the top summary");
  const ChangeSummary& top = result.summaries[0];
  std::printf("as a linear model tree:\n%s", top.tree()->Render().c_str());

  Step(10, "Partition visualization");
  RenderPartitions(top);

  // Beyond the paper's demo script: the summary in plain English and as an
  // executable UPDATE statement.
  Step(11, "Bonus: the summary in plain English");
  ExplainOptions explain_options;
  explain_options.entity_noun = "employees";
  std::printf("%s", ExplainSummary(top, explain_options).c_str());

  Step(12, "Bonus: the summary as executable SQL");
  SqlGenOptions sql_options;
  sql_options.table_name = "salaries";
  std::printf("%s", ToSqlUpdate(top, sql_options)->c_str());

  std::printf("\nDone. Plug in your own CSVs with examples/csv_diff_tool.\n");
  return 0;
}
