/// \file
/// \brief The paper's nonlinear extension in action: a quadratic update
/// policy recovered through feature augmentation, then exported as SQL and
/// prose.
///
/// A consulting firm reprices client retainers: new_retainer =
/// 0.002 × head_count² + 1.1 × old_retainer for enterprise clients, +5% for
/// everyone else. The quadratic term is invisible to a plain linear search;
/// augmenting both snapshots with sq_head_count makes it a linear rule.
///
/// Run: ./build/examples/nonlinear_policy

#include <cmath>
#include <cstdio>

#include "common/random.h"
#include "core/charles.h"
#include "table/table_builder.h"
#include "workload/policy.h"

using namespace charles;

namespace {

Result<Table> MakeClients(int64_t n) {
  CHARLES_ASSIGN_OR_RETURN(Schema schema,
                           Schema::Make({
                               Field{"client_id", TypeKind::kInt64, false},
                               Field{"segment", TypeKind::kString, true},
                               Field{"head_count", TypeKind::kDouble, true},
                               Field{"retainer", TypeKind::kDouble, true},
                           }));
  Rng rng(77);
  TableBuilder builder(schema);
  for (int64_t i = 0; i < n; ++i) {
    bool enterprise = rng.Bernoulli(0.4);
    double heads = enterprise ? rng.UniformInt(200, 2000) : rng.UniformInt(5, 150);
    double retainer = 500.0 + 12.0 * heads + rng.Normal(0, 200);
    CHARLES_RETURN_NOT_OK(builder.AppendRow(
        {Value(i), Value(enterprise ? "enterprise" : "smb"),
         Value(static_cast<double>(heads)), Value(std::round(retainer))}));
  }
  return builder.Finish();
}

Policy MakeRepricingPolicy() {
  Policy policy;
  {
    LinearModel model;
    model.feature_names = {"sq_head_count", "retainer"};
    model.coefficients = {0.002, 1.1};
    policy.AddRule(MakeColumnCompare("segment", CompareOp::kEq, Value("enterprise")),
                   LinearTransform::Linear("retainer", std::move(model)), "P1");
  }
  {
    LinearModel model;
    model.feature_names = {"retainer"};
    model.coefficients = {1.05};
    policy.AddRule(MakeTrue(), LinearTransform::Linear("retainer", std::move(model)),
                   "P2");
  }
  return policy;
}

}  // namespace

int main() {
  Table source = MakeClients(1200).ValueOrDie();

  // Augment FIRST so the quadratic policy can be expressed at all, then let
  // the policy engine price against the augmented source.
  AugmentOptions augment;
  augment.attributes = {"head_count"};
  augment.log_features = false;
  Table augmented_source = AugmentWithNonlinearFeatures(source, augment).ValueOrDie();
  Policy policy = MakeRepricingPolicy();
  Table augmented_target = policy.Apply(augmented_source).ValueOrDie();

  std::printf("latent repricing policy:\n%s\n", policy.ToString().c_str());

  CharlesOptions options;
  options.target_attribute = "retainer";
  options.key_columns = {"client_id"};
  options.transform_attributes = {"retainer", "sq_head_count"};

  SummaryList result =
      SummarizeChanges(augmented_source, augmented_target, options).ValueOrDie();
  const ChangeSummary& top = result.summaries[0];
  std::printf("recovered summary:\n%s\n", top.ToString().c_str());

  RecoveryReport recovery =
      EvaluateRecovery(policy, top, augmented_source).ValueOrDie();
  std::printf("recovery: %s\n\n", recovery.ToString().c_str());

  ExplainOptions explain;
  explain.entity_noun = "clients";
  std::printf("in plain English:\n%s\n", ExplainSummary(top, explain).c_str());

  SqlGenOptions sql;
  sql.table_name = "retainers";
  std::printf("as SQL:\n%s", ToSqlUpdate(top, sql)->c_str());
  return 0;
}
