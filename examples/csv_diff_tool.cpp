/// \file
/// \brief Generic command-line ChARLES: summarize the change between two CSV
/// snapshots of the same relation ("plug their own datasets into ChARLES").
///
/// Usage:
///   csv_diff_tool <source.csv> <target.csv> --target=ATTR --key=COL[,COL...]
///                 [--alpha=0.5] [--top=10] [--c=3] [--t=2]
///                 [--cond=COL[,COL...]] [--tran=COL[,COL...]] [--tree]
///
/// Example:
///   ./build/examples/csv_diff_tool salaries_2016.csv salaries_2017.csv \
///       --target=base_salary --key=employee_id --tree

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/charles.h"

namespace {

using namespace charles;

struct Args {
  std::string source_path;
  std::string target_path;
  CharlesOptions options;
  bool show_tree = false;
  bool valid = false;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: csv_diff_tool <source.csv> <target.csv> --target=ATTR "
               "--key=COL[,COL...]\n"
               "                     [--alpha=0.5] [--top=10] [--c=3] [--t=2]\n"
               "                     [--cond=COL,...] [--tran=COL,...] [--tree]\n");
}

Args Parse(int argc, char** argv) {
  Args args;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (StartsWith(arg, "--target=")) {
      args.options.target_attribute = value_of("--target=");
    } else if (StartsWith(arg, "--key=")) {
      args.options.key_columns = Split(value_of("--key="), ',');
    } else if (StartsWith(arg, "--alpha=")) {
      args.options.alpha = std::atof(value_of("--alpha=").c_str());
    } else if (StartsWith(arg, "--top=")) {
      args.options.top_n = std::atoi(value_of("--top=").c_str());
    } else if (StartsWith(arg, "--c=")) {
      args.options.max_condition_attrs = std::atoi(value_of("--c=").c_str());
    } else if (StartsWith(arg, "--t=")) {
      args.options.max_transform_attrs = std::atoi(value_of("--t=").c_str());
    } else if (StartsWith(arg, "--cond=")) {
      args.options.condition_attributes = Split(value_of("--cond="), ',');
    } else if (StartsWith(arg, "--tran=")) {
      args.options.transform_attributes = Split(value_of("--tran="), ',');
    } else if (arg == "--tree") {
      args.show_tree = true;
    } else if (StartsWith(arg, "--")) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return args;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2 || args.options.target_attribute.empty() ||
      args.options.key_columns.empty()) {
    return args;
  }
  args.source_path = positional[0];
  args.target_path = positional[1];
  args.valid = true;
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Parse(argc, argv);
  if (!args.valid) {
    PrintUsage();
    return 2;
  }

  Result<Table> source = CsvReader::ReadFile(args.source_path);
  if (!source.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", args.source_path.c_str(),
                 source.status().ToString().c_str());
    return 1;
  }
  Result<Table> target = CsvReader::ReadFile(args.target_path);
  if (!target.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", args.target_path.c_str(),
                 target.status().ToString().c_str());
    return 1;
  }

  // CSV inference can type the same column int64 in one year and double in
  // the other; promote such pairs before diffing.
  Result<std::pair<Table, Table>> unified = UnifyNumericTypes(*source, *target);
  if (!unified.ok()) {
    std::fprintf(stderr, "type unification failed: %s\n",
                 unified.status().ToString().c_str());
    return 1;
  }
  Table& source_table = unified->first;
  Table& target_table = unified->second;

  // A quick raw diff first, so the user sees what changed at all.
  DiffOptions diff_options;
  diff_options.key_columns = args.options.key_columns;
  Result<SnapshotDiff> diff = SnapshotDiff::Compute(source_table, target_table, diff_options);
  if (!diff.ok()) {
    std::fprintf(stderr, "diff failed: %s\n", diff.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", diff->Summary().c_str());

  Result<SummaryList> result =
      SummarizeChanges(source_table, target_table, args.options);
  if (!result.ok()) {
    std::fprintf(stderr, "ChARLES failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", result->ToString().c_str());
  if (args.show_tree && !result->summaries.empty()) {
    std::printf("\ntop summary as a model tree:\n%s",
                result->summaries[0].tree()->Render().c_str());
  }
  return 0;
}
