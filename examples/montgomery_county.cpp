/// \file
/// \brief The paper's demo scenario at scale: Montgomery County-style salary
/// snapshots, 2016 -> 2017.
///
/// The real dataset is not shipped (see DESIGN.md); the generator reproduces
/// its schema and marginals with a *known* latent pay policy, so this
/// example can report not just the mined summaries but their recovery
/// quality against the ground truth.
///
/// Run: ./build/examples/montgomery_county [num_rows]

#include <cstdio>
#include <cstdlib>

#include "core/charles.h"
#include "workload/montgomery_gen.h"

int main(int argc, char** argv) {
  using namespace charles;

  int64_t num_rows = 9000;  // the real dataset's scale
  if (argc > 1) num_rows = std::atoll(argv[1]);

  MontgomeryGenOptions gen;
  gen.num_rows = num_rows;
  Table snapshot_2016 = GenerateMontgomery2016(gen).ValueOrDie();
  Table snapshot_2017 = GenerateMontgomery2017(snapshot_2016).ValueOrDie();

  std::printf("Montgomery County-style payroll, %lld employees\n",
              static_cast<long long>(num_rows));
  std::printf("schema: %s\n\n", snapshot_2016.schema().ToString().c_str());

  Policy truth = MakeMontgomeryPayPolicy();
  std::printf("latent 2017 pay policy (unknown to the engine):\n%s\n",
              truth.ToString().c_str());

  CharlesOptions options;
  options.target_attribute = "base_salary";
  options.key_columns = {"employee_id"};

  Result<SummaryList> result =
      SummarizeChanges(snapshot_2016, snapshot_2017, options);
  if (!result.ok()) {
    std::fprintf(stderr, "ChARLES failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  const ChangeSummary& top = result->summaries[0];
  std::printf("top summary (of %zu, found in %.2fs):\n%s\n",
              result->summaries.size(), result->elapsed_seconds,
              top.ToString().c_str());
  std::printf("model tree:\n%s\n", top.tree()->Render().c_str());

  RecoveryReport recovery = EvaluateRecovery(truth, top, snapshot_2016).ValueOrDie();
  std::printf("recovery vs latent policy: %s\n", recovery.ToString().c_str());
  return 0;
}
