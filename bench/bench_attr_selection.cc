/// \file
/// Experiment E7 (§2 setup assistant; demo steps 4-5): quality of the
/// correlation-based attribute shortlists as noise attributes are added.
/// The paper claims the assistant presents "a shortlist of attributes that
/// are most likely to be effective"; here precision/recall against the
/// planted policy's attributes must stay high as decoys multiply.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.h"
#include "workload/employee_gen.h"

namespace charles {
namespace bench {
namespace {

struct SelectionQuality {
  double precision;
  double recall;
  int shortlisted;
};

SelectionQuality Evaluate(const std::vector<std::string>& selected,
                          const std::vector<std::string>& truth) {
  int hits = 0;
  for (const std::string& name : selected) {
    if (std::find(truth.begin(), truth.end(), name) != truth.end()) ++hits;
  }
  SelectionQuality q;
  q.shortlisted = static_cast<int>(selected.size());
  q.precision = selected.empty() ? 0.0
                                 : static_cast<double>(hits) /
                                       static_cast<double>(selected.size());
  int covered = 0;
  for (const std::string& name : truth) {
    if (std::find(selected.begin(), selected.end(), name) != selected.end()) ++covered;
  }
  q.recall = truth.empty() ? 1.0
                           : static_cast<double>(covered) /
                                 static_cast<double>(truth.size());
  return q;
}

void PrintExperiment() {
  PrintHeader("E7: setup-assistant shortlist quality vs decoy attributes",
              "informative attributes (edu, exp / bonus, salary) stay shortlisted "
              "as pure-noise attributes grow");

  // Ground truth: the bonus policy conditions on edu and exp and transforms
  // from the old bonus (salary is a valid proxy: bonus = 10% salary).
  const std::vector<std::string> cond_truth = {"edu", "exp"};
  const std::vector<std::string> tran_truth = {"bonus", "salary"};

  std::vector<int> widths = {8, 10, 10, 10, 10, 12};
  PrintRule(widths);
  PrintTableRow(widths, {"decoys", "cond prec", "cond rec", "tran prec", "tran rec",
                         "decoys kept"});
  PrintRule(widths);
  for (int decoys : {0, 4, 8, 16, 24}) {
    EmployeeGenOptions gen;
    gen.num_rows = 2000;
    gen.num_decoy_numeric = decoys / 2;
    gen.num_decoy_categorical = decoys - decoys / 2;
    Table source = GenerateEmployees(gen).ValueOrDie();
    Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
    DiffOptions diff_options;
    diff_options.key_columns = {"emp_id"};
    SnapshotDiff diff = SnapshotDiff::Compute(source, target, diff_options).ValueOrDie();
    CharlesOptions options = DefaultBenchOptions("bonus", "emp_id");
    SetupResult setup = SetupAssistant::Analyze(diff, options).ValueOrDie();

    SelectionQuality cond = Evaluate(setup.ConditionNames(), cond_truth);
    SelectionQuality tran = Evaluate(setup.TransformNames(), tran_truth);
    int decoys_kept = 0;
    for (const std::string& name : setup.ConditionNames()) {
      if (name.find("decoy") != std::string::npos) ++decoys_kept;
    }
    for (const std::string& name : setup.TransformNames()) {
      if (name.find("decoy") != std::string::npos) ++decoys_kept;
    }
    PrintTableRow(widths,
                  {std::to_string(decoys), Fmt(cond.precision, 3), Fmt(cond.recall, 3),
                   Fmt(tran.precision, 3), Fmt(tran.recall, 3),
                   std::to_string(decoys_kept)});
  }
  PrintRule(widths);
  std::printf("(cond prec < 1 is expected: gender/dept rank among candidates but are\n"
              " harmless; the key property is decoys kept = 0 and recall = 1.)\n");
}

void BM_SetupAssistant(benchmark::State& state) {
  EmployeeGenOptions gen;
  gen.num_rows = 2000;
  gen.num_decoy_numeric = static_cast<int>(state.range(0)) / 2;
  gen.num_decoy_categorical = static_cast<int>(state.range(0)) / 2;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
  DiffOptions diff_options;
  diff_options.key_columns = {"emp_id"};
  SnapshotDiff diff = SnapshotDiff::Compute(source, target, diff_options).ValueOrDie();
  CharlesOptions options = DefaultBenchOptions("bonus", "emp_id");
  for (auto _ : state) {
    SetupResult setup = SetupAssistant::Analyze(diff, options).ValueOrDie();
    benchmark::DoNotOptimize(setup.condition_candidates.size());
  }
}
BENCHMARK(BM_SetupAssistant)->Arg(0)->Arg(24)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace charles

int main(int argc, char** argv) {
  charles::bench::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
