/// \file
/// Experiment L1 (ISSUE 3 / ROADMAP "fast as the hardware allows"): leaf-fit
/// cost, old QR-per-(leaf, T) path versus the sufficient-statistics path,
/// over a rows × features × transforms grid.
///
/// The phase-3 sweep fits every (partition, T) pair. The QR path pays
/// O(m·p²) per fit — rows times features squared, once per transformation
/// subset. The sufficient-statistics path scans the leaf's rows once
/// (accumulating the full shortlist's moments) and then answers every
/// T-subset with a p×p solve, so its cost is one scan plus
/// transforms × O(p³). The flagship cell (100k rows × 8 features × 16
/// transforms) must show ≥ 3× — in practice the gap is far larger and grows
/// with rows × transforms.
///
/// A third column measures Merge: the same moments accumulated in 8 chunks
/// and rolled up (the child-partition → parent-fit path, exercised without
/// rescanning rows).
///
/// A fourth pair of columns (ISSUE 7) times the intra-block kernels: the
/// canonical block fold run with the scalar reference kernel versus the
/// vectorized one. The two must produce bit-identical moments — the kernel
/// contract — so the comparison is pure throughput, and the JSON records
/// `kernel_bit_identical` alongside the speedup.
///
/// A second grid (ISSUE 8) measures the batched block-major fold: L
/// overlapping leaves folded against per-block staged columns
/// (linalg/batch_fold.h) versus L independent per-leaf sweeps, over
/// leaves-per-batch × block size × kernel at the 100k × 8 reference shape.
/// Both sides run the same L folds, so the per-fold and end-to-end speedups
/// coincide; target is ≥ 2× over the per-leaf vectorized path at L ≥ 4.
///
/// Results are recorded in BENCH_leaffit.json (working directory).
/// `--smoke` runs one reduced cell and exits non-zero if the speedup drops
/// below 1.5×, the kernels' moments diverge by a single bit, or the batched
/// fold diverges from the per-leaf scalar reference on either kernel — the
/// CI tripwire for the leaf-fit path, the kernel contract, and the batched
/// fold contract.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "linalg/batch_fold.h"
#include "linalg/kernels/block_stage.h"
#include "linalg/kernels/kernel.h"
#include "linalg/suffstats.h"
#include "ml/linear_regression.h"

namespace charles {
namespace bench {
namespace {

struct LeafData {
  Matrix x;  ///< rows × features, the leaf's full transformation shortlist
  std::vector<double> y;
  std::vector<std::string> names;
};

/// Employee-bonus-shaped synthetic leaf: large feature means, modest spread,
/// near-linear response with mild noise — the regime phase 3 actually fits.
LeafData MakeLeaf(int64_t rows, int64_t features, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  LeafData leaf;
  leaf.x = Matrix(rows, features);
  leaf.y.resize(static_cast<size_t>(rows));
  for (int64_t c = 0; c < features; ++c) leaf.names.push_back("a" + std::to_string(c));
  for (int64_t r = 0; r < rows; ++r) {
    double target = 1000.0;
    for (int64_t c = 0; c < features; ++c) {
      double v = 4000.0 * static_cast<double>(c + 1) + 500.0 * unit(rng);
      leaf.x.At(r, c) = v;
      target += (0.05 + 0.01 * static_cast<double>(c)) * v;
    }
    leaf.y[static_cast<size_t>(r)] = target + 0.5 * unit(rng);
  }
  return leaf;
}

/// The first `count` transformation subsets (size 1 and 2) over `features`
/// columns, mirroring the engine's T-subset enumeration shape.
std::vector<std::vector<int>> MakeSubsets(int64_t features, int count) {
  std::vector<std::vector<int>> subsets;
  for (int a = 0; a < features && static_cast<int>(subsets.size()) < count; ++a) {
    subsets.push_back({a});
  }
  for (int a = 0; a < features && static_cast<int>(subsets.size()) < count; ++a) {
    for (int b = a + 1; b < features && static_cast<int>(subsets.size()) < count; ++b) {
      subsets.push_back({a, b});
    }
  }
  return subsets;
}

double Seconds(const std::chrono::steady_clock::time_point& since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - since)
      .count();
}

std::vector<std::string> SubsetNames(const LeafData& leaf,
                                     const std::vector<int>& subset) {
  std::vector<std::string> names;
  for (int f : subset) names.push_back(leaf.names[static_cast<size_t>(f)]);
  return names;
}

/// Old path: per T, materialize the subset design and run Householder QR —
/// what FitLeaf did for every (leaf, T) before the sufficient-stats rework.
double RunQrPath(const LeafData& leaf, const std::vector<std::vector<int>>& subsets,
                 std::vector<LinearModel>* models) {
  auto start = std::chrono::steady_clock::now();
  for (const std::vector<int>& subset : subsets) {
    Matrix sub(leaf.x.rows(), static_cast<int64_t>(subset.size()));
    for (size_t c = 0; c < subset.size(); ++c) {
      for (int64_t r = 0; r < leaf.x.rows(); ++r) {
        sub.At(r, static_cast<int64_t>(c)) = leaf.x.At(r, subset[c]);
      }
    }
    models->push_back(
        LinearRegression::Fit(sub, leaf.y, SubsetNames(leaf, subset)).ValueOrDie());
  }
  return Seconds(start);
}

/// New path: one scan accumulates the full shortlist's moments; every T is a
/// sub-solve.
double RunStatsPath(const LeafData& leaf, const std::vector<std::vector<int>>& subsets,
                    std::vector<LinearModel>* models) {
  auto start = std::chrono::steady_clock::now();
  SufficientStats stats(leaf.x.cols());
  for (int64_t r = 0; r < leaf.x.rows(); ++r) {
    stats.Accumulate(leaf.x.RowPtr(r), leaf.y[static_cast<size_t>(r)]);
  }
  for (const std::vector<int>& subset : subsets) {
    models->push_back(
        LinearRegression::FitFromStats(stats, subset, SubsetNames(leaf, subset))
            .ValueOrDie());
  }
  return Seconds(start);
}

/// Merge path: the same moments accumulated as 8 child chunks and rolled up
/// — the parent/partition-level fit without rescanning rows.
double RunMergePath(const LeafData& leaf, const std::vector<std::vector<int>>& subsets,
                    std::vector<LinearModel>* models) {
  auto start = std::chrono::steady_clock::now();
  const int kChunks = 8;
  SufficientStats merged(leaf.x.cols());
  int64_t rows = leaf.x.rows();
  for (int chunk = 0; chunk < kChunks; ++chunk) {
    int64_t begin = rows * chunk / kChunks;
    int64_t end = rows * (chunk + 1) / kChunks;
    SufficientStats partial(leaf.x.cols());
    for (int64_t r = begin; r < end; ++r) {
      partial.Accumulate(leaf.x.RowPtr(r), leaf.y[static_cast<size_t>(r)]);
    }
    CHARLES_CHECK_OK(merged.Merge(partial));
  }
  for (const std::vector<int>& subset : subsets) {
    models->push_back(
        LinearRegression::FitFromStats(merged, subset, SubsetNames(leaf, subset))
            .ValueOrDie());
  }
  return Seconds(start);
}

/// Max |coefficient difference| between the two paths' models — printed so a
/// speedup can never silently come from solving a different problem.
double MaxModelDelta(const std::vector<LinearModel>& a,
                     const std::vector<LinearModel>& b) {
  double max_delta = 0.0;
  for (size_t m = 0; m < a.size(); ++m) {
    max_delta = std::max(max_delta, std::abs(a[m].intercept - b[m].intercept) /
                                        std::max(1.0, std::abs(b[m].intercept)));
    for (size_t c = 0; c < a[m].coefficients.size(); ++c) {
      max_delta = std::max(max_delta,
                           std::abs(a[m].coefficients[c] - b[m].coefficients[c]));
    }
  }
  return max_delta;
}

struct GridRow {
  int64_t rows = 0;
  int64_t features = 0;
  int transforms = 0;
  double qr_s = 0.0;
  double stats_s = 0.0;
  double merge_s = 0.0;
  double speedup = 0.0;
  double max_delta = 0.0;
  double kernel_scalar_s = 0.0;
  double kernel_simd_s = 0.0;
  double kernel_speedup = 0.0;
  bool kernel_bit_identical = false;
};

/// Block size for the kernel comparison — the engine's default canonical
/// block (CharlesOptions::stats_block_rows), so the bench times the fold the
/// pipeline actually runs.
constexpr int64_t kKernelBlockRows = 4096;

/// Best-of-`reps` wall time for the canonical block fold under `kernel`.
/// The resulting stats from the final rep are left in `*out` for the
/// bit-identity check.
double TimeKernelFold(const kernels::Kernel& kernel,
                      const std::vector<const std::vector<double>*>& columns,
                      const std::vector<double>& y, int64_t rows, int reps,
                      SufficientStats* out) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    SufficientStats stats =
        AccumulateRangeBlocks(kernel, columns, y, rows, kKernelBlockRows);
    double elapsed = Seconds(start);
    benchmark::DoNotOptimize(stats);
    if (rep == 0 || elapsed < best) best = elapsed;
    *out = std::move(stats);
  }
  return best;
}

/// Scalar-vs-vectorized kernel throughput on the same column data the stats
/// path scans, plus the contract check: the moments must match bitwise.
void RunKernelPaths(const LeafData& leaf, GridRow* row) {
  int64_t rows = leaf.x.rows();
  int64_t features = leaf.x.cols();
  std::vector<std::vector<double>> storage(static_cast<size_t>(features));
  std::vector<const std::vector<double>*> columns;
  for (int64_t c = 0; c < features; ++c) {
    std::vector<double>& col = storage[static_cast<size_t>(c)];
    col.resize(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) col[static_cast<size_t>(r)] = leaf.x.At(r, c);
    columns.push_back(&col);
  }
  const int reps = rows >= 100000 ? 3 : 5;
  SufficientStats scalar_stats(features), simd_stats(features);
  row->kernel_scalar_s = TimeKernelFold(kernels::ScalarKernel(), columns, leaf.y,
                                        rows, reps, &scalar_stats);
  row->kernel_simd_s = TimeKernelFold(kernels::SimdKernel(), columns, leaf.y,
                                      rows, reps, &simd_stats);
  row->kernel_speedup = row->kernel_simd_s > 0
                            ? row->kernel_scalar_s / row->kernel_simd_s
                            : 0.0;
  row->kernel_bit_identical = scalar_stats.BitIdenticalTo(simd_stats);
}

GridRow RunCell(int64_t rows, int64_t features, int transforms, uint64_t seed) {
  LeafData leaf = MakeLeaf(rows, features, seed);
  std::vector<std::vector<int>> subsets = MakeSubsets(features, transforms);
  GridRow row;
  row.rows = rows;
  row.features = features;
  row.transforms = static_cast<int>(subsets.size());
  std::vector<LinearModel> qr_models, stats_models, merge_models;
  row.qr_s = RunQrPath(leaf, subsets, &qr_models);
  row.stats_s = RunStatsPath(leaf, subsets, &stats_models);
  row.merge_s = RunMergePath(leaf, subsets, &merge_models);
  row.speedup = row.stats_s > 0 ? row.qr_s / row.stats_s : 0.0;
  row.max_delta = std::max(MaxModelDelta(stats_models, qr_models),
                           MaxModelDelta(merge_models, qr_models));
  RunKernelPaths(leaf, &row);
  return row;
}

// --- Batched multi-leaf folds (ISSUE 8) -------------------------------------

/// Column-major copy of a leaf's design plus L overlapping leaves: leaf 0 is
/// all rows (contiguous), the rest are strided subsets — every leaf touches
/// every block, the regime where staging is shared the most (and the one the
/// phase-3 sweep's sibling partitions actually produce).
struct BatchBenchData {
  std::vector<std::vector<double>> column_storage;
  std::vector<const std::vector<double>*> columns;
  std::vector<double> y;
  std::vector<std::vector<int64_t>> row_storage;
  std::vector<kernels::BatchLeafRequest> requests;
};

BatchBenchData MakeBatchBench(const LeafData& leaf, int leaves) {
  BatchBenchData b;
  int64_t rows = leaf.x.rows();
  int64_t features = leaf.x.cols();
  b.column_storage.resize(static_cast<size_t>(features));
  for (int64_t c = 0; c < features; ++c) {
    std::vector<double>& col = b.column_storage[static_cast<size_t>(c)];
    col.resize(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) col[static_cast<size_t>(r)] = leaf.x.At(r, c);
  }
  for (const std::vector<double>& col : b.column_storage) b.columns.push_back(&col);
  b.y = leaf.y;
  for (int l = 1; l < leaves; ++l) {
    std::vector<int64_t> idx;
    for (int64_t r = l % 5; r < rows; r += 1 + (l % 3)) idx.push_back(r);
    b.row_storage.push_back(std::move(idx));
  }
  kernels::BatchLeafRequest all;
  all.begin = 0;
  all.count = rows;
  b.requests.push_back(all);
  for (const std::vector<int64_t>& idx : b.row_storage) {
    kernels::BatchLeafRequest req;
    req.rows = idx.data();
    req.count = static_cast<int64_t>(idx.size());
    b.requests.push_back(req);
  }
  return b;
}

/// Per-leaf reference: one full AccumulateRowBlocks / AccumulateRangeBlocks
/// sweep per leaf — the column bytes cross the core once per leaf.
double TimePerLeafFolds(const kernels::Kernel& kernel, const BatchBenchData& b,
                        int64_t block_rows, int reps,
                        std::vector<SufficientStats>* out) {
  int64_t rows = static_cast<int64_t>(b.y.size());
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    std::vector<SufficientStats> stats;
    stats.reserve(b.requests.size());
    stats.push_back(AccumulateRangeBlocks(kernel, b.columns, b.y, rows, block_rows));
    for (const std::vector<int64_t>& idx : b.row_storage) {
      stats.push_back(AccumulateRowBlocks(kernel, b.columns, b.y, idx, block_rows));
    }
    double elapsed = Seconds(start);
    benchmark::DoNotOptimize(stats);
    if (rep == 0 || elapsed < best) best = elapsed;
    *out = std::move(stats);
  }
  return best;
}

/// Batched path: block-major sweep, one staging per block shared by every
/// leaf slice intersecting it (linalg/batch_fold.h).
double TimeBatchedFolds(const kernels::Kernel& kernel, const BatchBenchData& b,
                        int64_t block_rows, int reps,
                        std::vector<SufficientStats>* out) {
  int64_t rows = static_cast<int64_t>(b.y.size());
  int64_t p = static_cast<int64_t>(b.columns.size());
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    kernels::BlockStager stager;
    kernels::BatchFoldCounters counters;
    std::vector<SufficientStats> merged(b.requests.size(), SufficientStats(p));
    kernels::BatchFoldLeafMoments(
        kernel, b.columns, b.y, b.requests, 0, rows, block_rows, &stager,
        &counters, [&](int64_t ordinal, int64_t, SufficientStats&& stats) {
          CHARLES_CHECK_OK(merged[static_cast<size_t>(ordinal)].Merge(stats));
        });
    double elapsed = Seconds(start);
    benchmark::DoNotOptimize(merged);
    if (rep == 0 || elapsed < best) best = elapsed;
    *out = std::move(merged);
  }
  return best;
}

struct BatchGridRow {
  int64_t rows = 0;
  int leaves = 0;
  int64_t block_rows = 0;
  std::string kernel;
  double per_leaf_s = 0.0;  ///< L per-leaf sweeps, same kernel
  double batched_s = 0.0;   ///< one block-major batched sweep
  double speedup = 0.0;     ///< per-fold == end-to-end (both run L folds)
  bool bit_identical = false;  ///< batched vs per-leaf *scalar* reference
};

BatchGridRow RunBatchCell(const LeafData& leaf, const kernels::Kernel& kernel,
                          int leaves, int64_t block_rows) {
  BatchBenchData b = MakeBatchBench(leaf, leaves);
  const int reps = leaf.x.rows() >= 100000 ? 3 : 5;
  BatchGridRow row;
  row.rows = leaf.x.rows();
  row.leaves = leaves;
  row.block_rows = block_rows;
  row.kernel = kernel.name;
  std::vector<SufficientStats> per_leaf, batched, scalar_ref;
  row.per_leaf_s = TimePerLeafFolds(kernel, b, block_rows, reps, &per_leaf);
  row.batched_s = TimeBatchedFolds(kernel, b, block_rows, reps, &batched);
  row.speedup = row.batched_s > 0 ? row.per_leaf_s / row.batched_s : 0.0;
  TimePerLeafFolds(kernels::ScalarKernel(), b, block_rows, 1, &scalar_ref);
  row.bit_identical = batched.size() == scalar_ref.size();
  for (size_t l = 0; row.bit_identical && l < batched.size(); ++l) {
    row.bit_identical = batched[l].BitIdenticalTo(scalar_ref[l]);
  }
  return row;
}

/// Leaves-per-batch × block size × kernel at the 100k × 8 reference shape.
std::vector<BatchGridRow> RunBatchGrid() {
  LeafData leaf = MakeLeaf(100000, 8, 47);
  std::vector<BatchGridRow> grid;
  for (int leaves : {1, 4, 16}) {
    for (int64_t block_rows : {int64_t{1024}, int64_t{4096}}) {
      for (const kernels::Kernel* kernel :
           {&kernels::ScalarKernel(), &kernels::SimdKernel()}) {
        grid.push_back(RunBatchCell(leaf, *kernel, leaves, block_rows));
      }
    }
  }
  return grid;
}

void PrintBatchGrid(const std::vector<BatchGridRow>& grid) {
  std::printf("\nbatched multi-leaf folds (100k x 8 reference shape):\n");
  std::vector<int> widths = {8, 7, 7, 8, 11, 10, 9, 5};
  PrintRule(widths);
  PrintTableRow(widths, {"rows", "leaves", "block", "kernel", "per-leaf s",
                         "batched s", "speedup", "bits"});
  PrintRule(widths);
  for (const BatchGridRow& r : grid) {
    PrintTableRow(widths,
                  {std::to_string(r.rows), std::to_string(r.leaves),
                   std::to_string(r.block_rows), r.kernel, Fmt(r.per_leaf_s, 4),
                   Fmt(r.batched_s, 4), Fmt(r.speedup, 2) + "x",
                   r.bit_identical ? "ok" : "DIFF"});
  }
  PrintRule(widths);
}

void WriteJson(const std::string& path, const std::vector<GridRow>& grid,
               const std::vector<BatchGridRow>& batch_grid) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"grid\": [\n");
  for (size_t i = 0; i < grid.size(); ++i) {
    const GridRow& r = grid[i];
    std::fprintf(f,
                 "    {\"rows\": %lld, \"features\": %lld, \"transforms\": %d, "
                 "\"qr_s\": %.5f, \"suffstats_s\": %.5f, \"merge_s\": %.5f, "
                 "\"speedup\": %.2f, \"max_coef_delta\": %.3g, "
                 "\"kernel_scalar_s\": %.5f, \"kernel_simd_s\": %.5f, "
                 "\"kernel_speedup\": %.2f, \"kernel_bit_identical\": %s}%s\n",
                 static_cast<long long>(r.rows), static_cast<long long>(r.features),
                 r.transforms, r.qr_s, r.stats_s, r.merge_s, r.speedup, r.max_delta,
                 r.kernel_scalar_s, r.kernel_simd_s, r.kernel_speedup,
                 r.kernel_bit_identical ? "true" : "false",
                 i + 1 < grid.size() ? "," : "");
  }
  std::fprintf(
      f,
      "  ],\n"
      "  \"batch_notes\": \"target: >= 2x per-fold over the per-leaf "
      "vectorized path at 100k x 8, L >= 4. The win scales with the gap "
      "between last-level-cache/DRAM re-read cost (per-leaf path: the "
      "columns cross the core once per leaf) and near-core staged re-reads "
      "(batched path: one staging memcpy per block, then L folds from "
      "L1/L2). On hosts whose LLC holds the whole working set (e.g. a "
      "266 MiB L3 vs the ~7 MiB 100k x 9-column set), per-leaf re-reads "
      "already hit cache and the measured speedup collapses toward the "
      "staging overhead break-even; on cache-constrained hardware the "
      "re-reads stream from DRAM and batching recovers the full gap. "
      "Bit-identity holds everywhere regardless.\",\n"
      "  \"batch_grid\": [\n");
  for (size_t i = 0; i < batch_grid.size(); ++i) {
    const BatchGridRow& r = batch_grid[i];
    std::fprintf(f,
                 "    {\"rows\": %lld, \"leaves\": %d, \"block_rows\": %lld, "
                 "\"kernel\": \"%s\", \"per_leaf_s\": %.5f, \"batched_s\": %.5f, "
                 "\"per_fold_speedup\": %.2f, \"bit_identical\": %s}%s\n",
                 static_cast<long long>(r.rows), r.leaves,
                 static_cast<long long>(r.block_rows), r.kernel.c_str(),
                 r.per_leaf_s, r.batched_s, r.speedup,
                 r.bit_identical ? "true" : "false",
                 i + 1 < batch_grid.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nrecorded the grid in %s\n", path.c_str());
}

std::vector<GridRow> RunGrid(bool smoke) {
  std::vector<GridRow> grid;
  if (smoke) {
    grid.push_back(RunCell(20000, 8, 16, 42));
    return grid;
  }
  grid.push_back(RunCell(10000, 4, 8, 42));
  grid.push_back(RunCell(10000, 8, 16, 43));
  grid.push_back(RunCell(100000, 4, 8, 44));
  grid.push_back(RunCell(100000, 8, 8, 45));
  grid.push_back(RunCell(100000, 8, 16, 46));  // flagship: >= 3x required
  return grid;
}

void PrintGrid(const std::vector<GridRow>& grid) {
  std::vector<int> widths = {8, 9, 11, 9, 12, 9, 9, 11, 10, 9, 8, 5};
  PrintRule(widths);
  PrintTableRow(widths, {"rows", "features", "transforms", "QR s", "suffstats s",
                         "merge s", "speedup", "max delta", "k-scalar s",
                         "k-simd s", "k-speed", "bits"});
  PrintRule(widths);
  for (const GridRow& r : grid) {
    PrintTableRow(widths,
                  {std::to_string(r.rows), std::to_string(r.features),
                   std::to_string(r.transforms), Fmt(r.qr_s, 3), Fmt(r.stats_s, 3),
                   Fmt(r.merge_s, 3), Fmt(r.speedup, 1) + "x",
                   Fmt(r.max_delta, 10), Fmt(r.kernel_scalar_s, 4),
                   Fmt(r.kernel_simd_s, 4), Fmt(r.kernel_speedup, 2) + "x",
                   r.kernel_bit_identical ? "ok" : "DIFF"});
  }
  PrintRule(widths);
}

void BM_LeafFitQr(benchmark::State& state) {
  LeafData leaf = MakeLeaf(state.range(0), 8, 42);
  std::vector<std::vector<int>> subsets = MakeSubsets(8, 16);
  for (auto _ : state) {
    std::vector<LinearModel> models;
    benchmark::DoNotOptimize(RunQrPath(leaf, subsets, &models));
  }
}
BENCHMARK(BM_LeafFitQr)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_LeafFitSuffStats(benchmark::State& state) {
  LeafData leaf = MakeLeaf(state.range(0), 8, 42);
  std::vector<std::vector<int>> subsets = MakeSubsets(8, 16);
  for (auto _ : state) {
    std::vector<LinearModel> models;
    benchmark::DoNotOptimize(RunStatsPath(leaf, subsets, &models));
  }
}
BENCHMARK(BM_LeafFitSuffStats)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace charles

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  charles::bench::PrintHeader(
      std::string("L1: leaf-fit paths over a rows x features x transforms grid") +
          (smoke ? " (smoke)" : ""),
      "suffstats path >= 3x over QR-per-(leaf, T) at 100k x 8 x 16");
  std::vector<charles::bench::GridRow> grid = charles::bench::RunGrid(smoke);
  charles::bench::PrintGrid(grid);

  if (smoke) {
    const charles::bench::GridRow& r = grid.front();
    // Generous floor (the real margin is much larger) so CI noise cannot
    // flake, while a genuine regression — e.g. the fast path silently
    // falling back to QR — still fails loudly.
    if (r.speedup < 1.5) {
      std::fprintf(stderr, "FAIL: leaf-fit speedup %.2fx < 1.5x\n", r.speedup);
      return 1;
    }
    if (r.max_delta > 1e-6) {
      std::fprintf(stderr, "FAIL: paths disagree (max delta %.3g)\n", r.max_delta);
      return 1;
    }
    // The kernel contract is exact, so this gate is too: a single moment bit
    // differing between the scalar and vectorized kernels is a hard failure,
    // no tolerance. (Throughput is informational here — a perf gate on the
    // kernels would flake on noisy CI runners.)
    if (!r.kernel_bit_identical) {
      std::fprintf(stderr,
                   "FAIL: scalar and %s kernels produced different bits\n",
                   charles::kernels::SimdKernel().name);
      return 1;
    }
    // Batched cross-path tripwire (ISSUE 8): the batched block-major fold —
    // on either kernel — must reproduce the per-leaf scalar reference bit
    // for bit on a multi-leaf batch. Exact gate, no tolerance; throughput is
    // informational for the same flake reason as above.
    {
      charles::bench::LeafData leaf = charles::bench::MakeLeaf(20000, 8, 48);
      for (const charles::kernels::Kernel* kernel :
           {&charles::kernels::ScalarKernel(), &charles::kernels::SimdKernel()}) {
        charles::bench::BatchGridRow cell =
            charles::bench::RunBatchCell(leaf, *kernel, 4, 4096);
        if (!cell.bit_identical) {
          std::fprintf(stderr,
                       "FAIL: batched fold on the %s kernel diverged from the "
                       "per-leaf scalar reference\n",
                       kernel->name);
          return 1;
        }
        std::printf("batched smoke: %s kernel %.2fx vs per-leaf, bits ok\n",
                    kernel->name, cell.speedup);
      }
    }
    std::printf("smoke OK: %.1fx, max delta %.3g, kernels bit-identical "
                "(%s %.2fx vs scalar)\n",
                r.speedup, r.max_delta, charles::kernels::SimdKernel().name,
                r.kernel_speedup);
    return 0;
  }

  std::vector<charles::bench::BatchGridRow> batch_grid =
      charles::bench::RunBatchGrid();
  charles::bench::PrintBatchGrid(batch_grid);
  charles::bench::WriteJson("BENCH_leaffit.json", grid, batch_grid);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
