/// \file
/// Experiment E3 (demo step 6, §2): the accuracy-interpretability tradeoff
/// under the α knob. Sweeping α from 0 (interpretability only) to 1
/// (accuracy only) must shift the winning summary from coarse single-CT
/// explanations to many-CT exact ones.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/montgomery_gen.h"

namespace charles {
namespace bench {
namespace {

struct SweepPoint {
  double alpha;
  int num_cts;
  double accuracy;
  double interpretability;
  double score;
};

SweepPoint RunAt(double alpha, const Table& source, const Table& target) {
  CharlesOptions options = DefaultBenchOptions("base_salary", "employee_id");
  options.alpha = alpha;
  SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
  const ChangeSummary& top = result.summaries[0];
  return SweepPoint{alpha, top.num_cts(), top.scores().accuracy,
                    top.scores().interpretability, top.scores().score};
}

void PrintExperiment() {
  PrintHeader("E3: alpha sweep (demo step 6)",
              "low alpha -> small interpretable summaries; high alpha -> exact "
              "multi-CT summaries; default 0.5 balances both");

  MontgomeryGenOptions gen;
  gen.num_rows = 3000;
  Table source = GenerateMontgomery2016(gen).ValueOrDie();
  Table target = GenerateMontgomery2017(source).ValueOrDie();

  std::vector<int> widths = {6, 10, 9, 9, 9};
  PrintRule(widths);
  PrintTableRow(widths, {"alpha", "top #CTs", "accuracy", "interp", "score"});
  PrintRule(widths);
  int prev_cts = 0;
  bool monotone_cts = true;
  for (int i = 0; i <= 10; ++i) {
    double alpha = static_cast<double>(i) / 10.0;
    SweepPoint point = RunAt(alpha, source, target);
    if (point.num_cts < prev_cts) monotone_cts = false;
    prev_cts = point.num_cts;
    PrintTableRow(widths, {Fmt(alpha, 1), std::to_string(point.num_cts),
                           Fmt(point.accuracy), Fmt(point.interpretability),
                           Fmt(point.score)});
  }
  PrintRule(widths);
  std::printf("summary size non-decreasing in alpha: %s\n",
              monotone_cts ? "yes" : "no (minor local inversions)");
}

void BM_AlphaRun(benchmark::State& state) {
  MontgomeryGenOptions gen;
  gen.num_rows = 2000;
  Table source = GenerateMontgomery2016(gen).ValueOrDie();
  Table target = GenerateMontgomery2017(source).ValueOrDie();
  double alpha = static_cast<double>(state.range(0)) / 10.0;
  CharlesOptions options = DefaultBenchOptions("base_salary", "employee_id");
  options.alpha = alpha;
  for (auto _ : state) {
    SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
    benchmark::DoNotOptimize(result.summaries[0].scores().score);
  }
}
BENCHMARK(BM_AlphaRun)->Arg(0)->Arg(5)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace charles

int main(int argc, char** argv) {
  charles::bench::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
