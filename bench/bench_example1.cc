/// \file
/// Experiment E1 (Figure 1 + Figure 2 + Example 1): recover the rules R1-R3
/// from the paper's toy salary snapshots and render them as a linear model
/// tree. The paper reports the Example-1 summary as the top result "with a
/// very high score of 89%".

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/example1.h"

namespace charles {
namespace bench {
namespace {

void PrintExperiment() {
  PrintHeader("E1: Example 1 rule recovery (Figures 1 & 2)",
              "top summary = {R1, R2, R3, no-change}, score ~0.89, accuracy 1.0");

  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options = DefaultBenchOptions("bonus", "name");
  SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
  const ChangeSummary& top = result.summaries[0];

  std::printf("planted policy (Example 1):\n%s\n",
              MakeExample1Policy().ToString().c_str());
  std::printf("top summary:\n%s\n", top.ToString().c_str());
  std::printf("as a linear model tree (Figure 2):\n%s\n",
              top.tree()->Render().c_str());

  RecoveryReport recovery =
      EvaluateRecovery(MakeExample1Policy(), top, source).ValueOrDie();
  std::vector<int> widths = {34, 12, 12};
  PrintRule(widths);
  PrintTableRow(widths, {"metric", "paper", "measured"});
  PrintRule(widths);
  PrintTableRow(widths, {"top summary score", "~0.89", Fmt(top.scores().score)});
  PrintTableRow(widths, {"top summary accuracy", "1.0", Fmt(top.scores().accuracy)});
  PrintTableRow(widths, {"rule recovery recall", "1.0", Fmt(recovery.rule_recall)});
  PrintTableRow(widths, {"rule recovery precision", "1.0", Fmt(recovery.rule_precision)});
  PrintTableRow(widths,
                {"#CTs in top summary", "4", std::to_string(top.num_cts())});
  PrintRule(widths);
}

void BM_Example1EndToEnd(benchmark::State& state) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options = DefaultBenchOptions("bonus", "name");
  for (auto _ : state) {
    SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
    benchmark::DoNotOptimize(result.summaries[0].scores().score);
  }
}
BENCHMARK(BM_Example1EndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace charles

int main(int argc, char** argv) {
  charles::bench::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
