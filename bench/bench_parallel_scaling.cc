/// \file
/// Experiment P1 (ROADMAP "fast as the hardware allows"): engine wall-clock
/// versus worker threads on the employee workload. The (C, T) candidate
/// search is embarrassingly parallel, so the shape to reproduce on a
/// multi-core host is near-linear speedup until workers exceed either the
/// physical cores or the number of independent work items, with the phase
/// breakdown showing fitting (phase 3) scaling best — it dominates serial
/// runtime and shards over (partition, T) pairs. Output is checked identical
/// to the 1-thread run at every sweep point (the subsystem's determinism
/// contract).
///
/// P1b adds the serving shape: a long-lived EngineContext whose pool and
/// leaf-fit cache persist across Find() calls. The second (warm) call skips
/// thread spawn and serves every leaf fit from the cross-run cache, so
/// back-to-back queries must beat two cold per-run engines. P1c measures the
/// streaming API's time-to-first-ranked-partial against the full sweep.
///
/// Both sweeps are recorded in BENCH_parallel.json (written to the working
/// directory) for regression tracking.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/engine_context.h"
#include "parallel/thread_pool.h"
#include "workload/employee_gen.h"

namespace charles {
namespace bench {
namespace {

constexpr int64_t kRows = 4000;
const std::vector<int> kThreadSweep = {1, 2, 4, 8};

CharlesOptions ScalingOptions(int threads) {
  return WithThreads(DefaultBenchOptions("bonus", "emp_id"), threads);
}

struct Workload {
  Table source;
  Table target;
};

Workload MakeWorkload() {
  EmployeeGenOptions gen;
  gen.num_rows = kRows;
  gen.num_decoy_numeric = 2;
  gen.num_decoy_categorical = 1;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
  return Workload{std::move(source), std::move(target)};
}

bool IdenticalRanking(const SummaryList& a, const SummaryList& b) {
  if (a.summaries.size() != b.summaries.size()) return false;
  for (size_t i = 0; i < a.summaries.size(); ++i) {
    if (a.summaries[i].Signature() != b.summaries[i].Signature() ||
        a.summaries[i].scores().score != b.summaries[i].scores().score) {
      return false;
    }
  }
  return true;
}

double WallSeconds(const std::chrono::steady_clock::time_point& since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - since)
      .count();
}

struct ColdRow {
  int threads = 0;
  double total_s = 0, cluster_s = 0, induce_s = 0, fit_s = 0;
  int64_t fits = 0, reuse = 0;
  bool identical = false;
};

struct WarmRow {
  int threads = 0;
  double cold_pair_s = 0;  ///< two fresh per-run engines, back to back
  double ctx_first_s = 0;  ///< context Find #1 (pool reused, cache cold)
  double ctx_second_s = 0; ///< context Find #2 (pool reused, cache warm)
  int64_t warm_fits = 0, warm_reuse = 0;
  bool identical = false;
};

ColdRow MakeColdRow(const SummaryList& result, int threads, double total_s,
                    const SummaryList& serial) {
  ColdRow row;
  row.threads = threads;
  row.total_s = total_s;
  row.cluster_s = result.clustering_seconds;
  row.induce_s = result.induction_seconds;
  row.fit_s = result.fitting_seconds;
  row.fits = result.leaf_fits_computed;
  row.reuse = result.leaf_fits_reused;
  row.identical = serial.summaries.empty() || IdenticalRanking(result, serial);
  return row;
}

ColdRow RunCold(const Workload& workload, int threads, const SummaryList& serial) {
  auto start = std::chrono::steady_clock::now();
  SummaryList result =
      SummarizeChanges(workload.source, workload.target, ScalingOptions(threads))
          .ValueOrDie();
  return MakeColdRow(result, threads, WallSeconds(start), serial);
}

WarmRow RunWarm(const Workload& workload, int threads, double cold_pair_s,
                const SummaryList& serial) {
  WarmRow row;
  row.threads = threads;
  row.cold_pair_s = cold_pair_s;

  EngineContextOptions ctx_options;
  ctx_options.num_threads = threads;
  EngineContext context(ctx_options);
  CharlesEngine engine(ScalingOptions(threads), &context);

  auto first_start = std::chrono::steady_clock::now();
  SummaryList first = engine.Find(workload.source, workload.target).ValueOrDie();
  row.ctx_first_s = WallSeconds(first_start);

  auto second_start = std::chrono::steady_clock::now();
  SummaryList second = engine.Find(workload.source, workload.target).ValueOrDie();
  row.ctx_second_s = WallSeconds(second_start);

  row.warm_fits = second.leaf_fits_computed;
  row.warm_reuse = second.leaf_fits_reused;
  row.identical = IdenticalRanking(first, serial) && IdenticalRanking(second, serial);
  return row;
}

/// P1d: end-to-end wall clock of one serial run with the leaf-fit fast path
/// off (QR per (leaf, T)) versus on (sufficient statistics) — the engine-
/// level payoff of bench_leaf_fit's microbenchmark.
struct FitPathRow {
  double qr_s = 0;
  double suffstats_s = 0;
  int64_t qr_fits = 0, suffstats_fits = 0;
  bool same_top = false;  ///< identical top-summary signatures (semantics)
};

FitPathRow RunFitPathComparison(const Workload& workload) {
  FitPathRow row;
  CharlesOptions options = ScalingOptions(1);
  options.use_sufficient_stats = false;
  auto qr_start = std::chrono::steady_clock::now();
  SummaryList qr =
      SummarizeChanges(workload.source, workload.target, options).ValueOrDie();
  row.qr_s = WallSeconds(qr_start);
  row.qr_fits = qr.leaf_fits_computed;

  options.use_sufficient_stats = true;
  auto fast_start = std::chrono::steady_clock::now();
  SummaryList fast =
      SummarizeChanges(workload.source, workload.target, options).ValueOrDie();
  row.suffstats_s = WallSeconds(fast_start);
  row.suffstats_fits = fast.leaf_fits_computed;

  // The two solvers agree to ~1e-9 per fit, so scores can differ in their
  // last ULPs — compare the ranked signatures, not the bits.
  row.same_top = qr.summaries.size() == fast.summaries.size();
  for (size_t i = 0; row.same_top && i < qr.summaries.size(); ++i) {
    row.same_top = qr.summaries[i].Signature() == fast.summaries[i].Signature();
  }
  return row;
}

void WriteJson(const std::string& path, const std::vector<ColdRow>& cold,
               const std::vector<WarmRow>& warm, const FitPathRow& fit_path,
               double stream_first_s, double stream_total_s) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"rows\": %lld,\n  \"hardware_concurrency\": %d,\n",
               static_cast<long long>(kRows), ThreadPool::HardwareConcurrency());
  std::fprintf(f, "  \"cold_start_sweep\": [\n");
  for (size_t i = 0; i < cold.size(); ++i) {
    const ColdRow& r = cold[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"total_s\": %.4f, \"cluster_s\": %.4f, "
                 "\"induce_s\": %.4f, \"fit_s\": %.4f, \"fits\": %lld, "
                 "\"fit_reuse\": %lld, \"identical\": %s}%s\n",
                 r.threads, r.total_s, r.cluster_s, r.induce_s, r.fit_s,
                 static_cast<long long>(r.fits), static_cast<long long>(r.reuse),
                 r.identical ? "true" : "false", i + 1 < cold.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"warm_context_sweep\": [\n");
  for (size_t i = 0; i < warm.size(); ++i) {
    const WarmRow& r = warm[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"cold_pair_s\": %.4f, "
                 "\"ctx_first_s\": %.4f, \"ctx_second_s\": %.4f, "
                 "\"ctx_pair_s\": %.4f, \"warm_fits\": %lld, "
                 "\"warm_fit_reuse\": %lld, \"identical\": %s}%s\n",
                 r.threads, r.cold_pair_s, r.ctx_first_s, r.ctx_second_s,
                 r.ctx_first_s + r.ctx_second_s, static_cast<long long>(r.warm_fits),
                 static_cast<long long>(r.warm_reuse), r.identical ? "true" : "false",
                 i + 1 < warm.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"leaf_fit_path\": {\"qr_s\": %.4f, \"suffstats_s\": %.4f, "
               "\"speedup\": %.2f, \"qr_fits\": %lld, \"suffstats_fits\": %lld, "
               "\"same_top\": %s},\n",
               fit_path.qr_s, fit_path.suffstats_s,
               fit_path.suffstats_s > 0 ? fit_path.qr_s / fit_path.suffstats_s : 0.0,
               static_cast<long long>(fit_path.qr_fits),
               static_cast<long long>(fit_path.suffstats_fits),
               fit_path.same_top ? "true" : "false");
  std::fprintf(f,
               "  \"streaming\": {\"first_partial_s\": %.4f, "
               "\"total_s\": %.4f}\n}\n",
               stream_first_s, stream_total_s);
  std::fclose(f);
  std::printf("\nrecorded both sweeps in %s\n", path.c_str());
}

void PrintExperiment() {
  PrintHeader(
      "P1: wall-clock vs worker threads (" + std::to_string(kRows) + "-row employees)",
      "parallel (C, T) search: >= 2x at 4 threads on >= 4 cores, identical output");
  std::printf("hardware concurrency: %d\n\n", ThreadPool::HardwareConcurrency());

  Workload workload = MakeWorkload();

  // --- Cold-start sweep: a fresh per-run engine per call. -----------------
  std::vector<int> widths = {7, 9, 9, 10, 10, 10, 10, 11, 9};
  PrintRule(widths);
  PrintTableRow(widths, {"threads", "total s", "speedup", "cluster s", "induce s",
                         "fit s", "fits", "fit reuse", "identical"});
  PrintRule(widths);

  SummaryList serial;
  std::vector<ColdRow> cold_rows;
  for (int threads : kThreadSweep) {
    ColdRow row;
    if (threads == 1) {
      // The 1-thread run doubles as the determinism baseline for every
      // other sweep point; time it directly instead of running it twice.
      auto start = std::chrono::steady_clock::now();
      serial = SummarizeChanges(workload.source, workload.target, ScalingOptions(1))
                   .ValueOrDie();
      row = MakeColdRow(serial, 1, WallSeconds(start), serial);
    } else {
      row = RunCold(workload, threads, serial);
    }
    cold_rows.push_back(row);
    PrintTableRow(widths,
                  {std::to_string(threads), Fmt(row.total_s, 2),
                   Fmt(cold_rows.front().total_s / row.total_s, 2) + "x",
                   Fmt(row.cluster_s, 2), Fmt(row.induce_s, 2), Fmt(row.fit_s, 2),
                   std::to_string(row.fits), std::to_string(row.reuse),
                   row.identical ? "yes" : "NO"});
  }
  PrintRule(widths);

  // --- Warm-context sweep: one EngineContext, two back-to-back Find(). ----
  PrintHeader("P1b: warm EngineContext vs cold per-run engines (back-to-back Find)",
              "pool reuse + cross-run leaf-fit cache: warm pair beats cold pair");
  std::vector<int> wwidths = {7, 12, 12, 12, 11, 10, 11, 9};
  PrintRule(wwidths);
  PrintTableRow(wwidths, {"threads", "cold pair s", "ctx pair s", "warm find s",
                          "pair gain", "warm fits", "warm reuse", "identical"});
  PrintRule(wwidths);

  std::vector<WarmRow> warm_rows;
  for (size_t i = 0; i < kThreadSweep.size(); ++i) {
    int threads = kThreadSweep[i];
    // Back-to-back cold per-run engines: the sweep above timed one; run the
    // second so both pairs do identical work.
    double cold_pair_s = cold_rows[i].total_s + RunCold(workload, threads, serial).total_s;
    WarmRow row = RunWarm(workload, threads, cold_pair_s, serial);
    warm_rows.push_back(row);
    double ctx_pair_s = row.ctx_first_s + row.ctx_second_s;
    PrintTableRow(wwidths,
                  {std::to_string(threads), Fmt(row.cold_pair_s, 2),
                   Fmt(ctx_pair_s, 2), Fmt(row.ctx_second_s, 2),
                   Fmt(row.cold_pair_s / ctx_pair_s, 2) + "x",
                   std::to_string(row.warm_fits), std::to_string(row.warm_reuse),
                   row.identical ? "yes" : "NO"});
  }
  PrintRule(wwidths);

  // --- Leaf-fit path: QR per (leaf, T) vs sufficient statistics. ----------
  PrintHeader("P1d: end-to-end serial run, QR leaf fits vs sufficient statistics",
              "suffstats leaf fits cut phase-3 cost; same ranked summaries");
  FitPathRow fit_path = RunFitPathComparison(workload);
  std::printf("QR path %.2fs (%lld fits), suffstats path %.2fs (%lld fits): "
              "%.2fx end-to-end, same top summaries: %s\n",
              fit_path.qr_s, static_cast<long long>(fit_path.qr_fits),
              fit_path.suffstats_s, static_cast<long long>(fit_path.suffstats_fits),
              fit_path.suffstats_s > 0 ? fit_path.qr_s / fit_path.suffstats_s : 0.0,
              fit_path.same_top ? "yes" : "NO");

  // --- Streaming: time to first ranked partial vs full sweep. -------------
  PrintHeader("P1c: streaming time-to-first-partial (FindAsync + SummaryStream)",
              "interactive search: first ranked partial long before the sweep ends");
  {
    EngineContextOptions ctx_options;
    ctx_options.num_threads = 4;
    EngineContext context(ctx_options);
    CharlesEngine engine(ScalingOptions(4), &context);
    auto start = std::chrono::steady_clock::now();
    double first_partial_s = -1.0;
    std::atomic<int64_t> shards_total{0};
    SummaryStream stream([&](const SummaryStreamUpdate& update) {
      if (first_partial_s < 0) first_partial_s = WallSeconds(start);
      shards_total = update.shards_total;
    });
    SummaryList streamed =
        engine.FindAsync(workload.source, workload.target, &stream).get().ValueOrDie();
    double total_s = WallSeconds(start);
    std::printf("first partial after %.3fs, full sweep %.3fs (%lld shards, "
                "%lld ranked updates), final identical to serial: %s\n",
                first_partial_s, total_s, static_cast<long long>(shards_total.load()),
                static_cast<long long>(stream.updates_emitted()),
                IdenticalRanking(streamed, serial) ? "yes" : "NO");
    WriteJson("BENCH_parallel.json", cold_rows, warm_rows, fit_path, first_partial_s,
              total_s);
  }
}

void BM_EndToEndThreads(benchmark::State& state) {
  Workload workload = MakeWorkload();
  CharlesOptions options = ScalingOptions(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SummaryList result =
        SummarizeChanges(workload.source, workload.target, options).ValueOrDie();
    benchmark::DoNotOptimize(result);
    state.counters["candidates"] = static_cast<double>(result.candidates_evaluated);
    state.counters["fit_s"] = result.fitting_seconds;
  }
}
BENCHMARK(BM_EndToEndThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// Warm-context serving shape: one Find per iteration against a persistent
/// context, so iteration 2+ report the steady-state (cache-warm) latency.
void BM_WarmContextFind(benchmark::State& state) {
  Workload workload = MakeWorkload();
  EngineContextOptions ctx_options;
  ctx_options.num_threads = static_cast<int>(state.range(0));
  EngineContext context(ctx_options);
  CharlesEngine engine(ScalingOptions(ctx_options.num_threads), &context);
  for (auto _ : state) {
    SummaryList result = engine.Find(workload.source, workload.target).ValueOrDie();
    benchmark::DoNotOptimize(result);
    state.counters["warm_fits"] = static_cast<double>(result.leaf_fits_computed);
  }
}
BENCHMARK(BM_WarmContextFind)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace bench
}  // namespace charles

int main(int argc, char** argv) {
  charles::bench::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
