/// \file
/// Experiment P1 (ROADMAP "fast as the hardware allows"): engine wall-clock
/// versus worker threads on the employee workload. The (C, T) candidate
/// search is embarrassingly parallel, so the shape to reproduce on a
/// multi-core host is near-linear speedup until workers exceed either the
/// physical cores or the number of independent work items, with the phase
/// breakdown showing fitting (phase 3) scaling best — it dominates serial
/// runtime and shards over partitions. Output is checked identical to the
/// 1-thread run at every sweep point (the subsystem's determinism contract).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "parallel/thread_pool.h"
#include "workload/employee_gen.h"

namespace charles {
namespace bench {
namespace {

constexpr int64_t kRows = 4000;

CharlesOptions ScalingOptions(int threads) {
  return WithThreads(DefaultBenchOptions("bonus", "emp_id"), threads);
}

struct Workload {
  Table source;
  Table target;
};

Workload MakeWorkload() {
  EmployeeGenOptions gen;
  gen.num_rows = kRows;
  gen.num_decoy_numeric = 2;
  gen.num_decoy_categorical = 1;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
  return Workload{std::move(source), std::move(target)};
}

void PrintExperiment() {
  PrintHeader(
      "P1: wall-clock vs worker threads (" + std::to_string(kRows) + "-row employees)",
      "parallel (C, T) search: >= 2x at 4 threads on >= 4 cores, identical output");
  std::printf("hardware concurrency: %d\n\n", ThreadPool::HardwareConcurrency());

  Workload workload = MakeWorkload();
  std::vector<int> widths = {7, 9, 9, 10, 10, 10, 10, 11, 9};
  PrintRule(widths);
  PrintTableRow(widths, {"threads", "total s", "speedup", "cluster s", "induce s",
                         "fit s", "fits", "fit reuse", "identical"});
  PrintRule(widths);

  SummaryList serial;
  for (int threads : {1, 2, 4, 8}) {
    SummaryList result =
        SummarizeChanges(workload.source, workload.target, ScalingOptions(threads))
            .ValueOrDie();
    if (threads == 1) serial = result;
    bool identical = result.summaries.size() == serial.summaries.size();
    for (size_t i = 0; identical && i < result.summaries.size(); ++i) {
      identical = result.summaries[i].Signature() == serial.summaries[i].Signature() &&
                  result.summaries[i].scores().score == serial.summaries[i].scores().score;
    }
    PrintTableRow(
        widths,
        {std::to_string(threads), Fmt(result.elapsed_seconds, 2),
         Fmt(serial.elapsed_seconds / result.elapsed_seconds, 2) + "x",
         Fmt(result.clustering_seconds, 2), Fmt(result.induction_seconds, 2),
         Fmt(result.fitting_seconds, 2), std::to_string(result.leaf_fits_computed),
         std::to_string(result.leaf_fits_reused), identical ? "yes" : "NO"});
  }
  PrintRule(widths);
}

void BM_EndToEndThreads(benchmark::State& state) {
  Workload workload = MakeWorkload();
  CharlesOptions options = ScalingOptions(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SummaryList result =
        SummarizeChanges(workload.source, workload.target, options).ValueOrDie();
    benchmark::DoNotOptimize(result);
    state.counters["candidates"] = static_cast<double>(result.candidates_evaluated);
    state.counters["fit_s"] = result.fitting_seconds;
  }
}
BENCHMARK(BM_EndToEndThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace charles

int main(int argc, char** argv) {
  charles::bench::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
