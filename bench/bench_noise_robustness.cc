/// \file
/// Experiment E8 (§1/§2: changes are partial and not perfectly clean —
/// Cathy and James kept their bonus): recovery quality as (a) additive noise
/// corrupts the transformed values and (b) a fraction of covered rows is
/// randomly exempted from the policy. Recovery must degrade gracefully, not
/// collapse.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/employee_gen.h"

namespace charles {
namespace bench {
namespace {

struct Outcome {
  double f1;
  double recall;
  double accuracy;
  double score;
};

Outcome RunWith(const PolicyApplicationOptions& apply_options, double jaccard,
                double transform_tolerance) {
  EmployeeGenOptions gen;
  gen.num_rows = 2000;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Policy policy = MakeEmployeeBonusPolicy();
  Table target = policy.Apply(source, apply_options).ValueOrDie();
  CharlesOptions options = DefaultBenchOptions("bonus", "emp_id");
  SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
  const ChangeSummary& top = result.summaries[0];
  RecoveryOptions recovery_options;
  recovery_options.min_partition_jaccard = jaccard;
  recovery_options.transform_tolerance = transform_tolerance;
  RecoveryReport recovery =
      EvaluateRecovery(policy, top, source, recovery_options).ValueOrDie();
  return Outcome{recovery.f1, recovery.rule_recall, top.scores().accuracy,
                 top.scores().score};
}

void PrintExperiment() {
  PrintHeader("E8: robustness to noise and policy exemptions",
              "recovery degrades gracefully; no cliff at small perturbations");

  std::printf("-- additive Gaussian noise on transformed bonuses (2000 rows) --\n");
  std::vector<int> widths = {12, 8, 8, 9, 9};
  PrintRule(widths);
  PrintTableRow(widths, {"noise sigma", "f1", "recall", "accuracy", "score"});
  PrintRule(widths);
  for (double sigma : {0.0, 5.0, 20.0, 50.0, 100.0, 200.0}) {
    PolicyApplicationOptions apply_options;
    apply_options.noise_stddev = sigma;
    apply_options.seed = 11;
    // With noise, demand the right partitions but tolerate inexact rules in
    // proportion to the injected noise.
    double tolerance = sigma == 0.0 ? 0.01 : 0.05;
    Outcome outcome = RunWith(apply_options, 0.85, tolerance);
    PrintTableRow(widths, {Fmt(sigma, 0), Fmt(outcome.f1, 3), Fmt(outcome.recall, 3),
                           Fmt(outcome.accuracy, 3), Fmt(outcome.score, 3)});
  }
  PrintRule(widths);

  std::printf("\n-- random exemptions (rows the policy should cover but skipped) --\n");
  PrintRule(widths);
  PrintTableRow(widths, {"exempted", "f1", "recall", "accuracy", "score"});
  PrintRule(widths);
  for (double fraction : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    PolicyApplicationOptions apply_options;
    apply_options.unchanged_fraction = fraction;
    apply_options.seed = 11;
    // Exempted rows dilute every partition's row set; scale the overlap
    // requirement accordingly.
    double jaccard = std::max(0.4, 0.9 - fraction);
    Outcome outcome = RunWith(apply_options, jaccard, 0.01);
    PrintTableRow(widths,
                  {Fmt(fraction, 2), Fmt(outcome.f1, 3), Fmt(outcome.recall, 3),
                   Fmt(outcome.accuracy, 3), Fmt(outcome.score, 3)});
  }
  PrintRule(widths);
}

void BM_NoisyRun(benchmark::State& state) {
  EmployeeGenOptions gen;
  gen.num_rows = 2000;
  Table source = GenerateEmployees(gen).ValueOrDie();
  PolicyApplicationOptions apply_options;
  apply_options.noise_stddev = static_cast<double>(state.range(0));
  Table target = MakeEmployeeBonusPolicy().Apply(source, apply_options).ValueOrDie();
  CharlesOptions options = DefaultBenchOptions("bonus", "emp_id");
  for (auto _ : state) {
    SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
    benchmark::DoNotOptimize(result.summaries[0].scores().score);
  }
}
BENCHMARK(BM_NoisyRun)->Arg(0)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace charles

int main(int argc, char** argv) {
  charles::bench::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
