/// \file
/// Experiment D1 (ISSUE 4 / ROADMAP "scale beyond one box"): distributed
/// shard execution over a shards × threads grid, for both backends.
///
/// Each cell runs the full engine on the employee workload with the
/// leaf-statistics sweep routed through the shard Coordinator, and records
/// end-to-end time, the coordinator's own fan-out + merge time, and the rows
/// the backends scanned. Every sharded ranking is checked bit-identical to
/// the unsharded baseline (top signature + bit-equal score) — a speedup that
/// changed the answer is a bug, not a result. The in-process backend shows
/// the shard sweep's parallel scaling; the subprocess backend prices the
/// wire format (fork + serialize + pipe per shard) that a multi-box backend
/// would pay per RPC; the remote backend (ISSUE 6) prices the full network
/// path — TCP framing, install-once input shipping, per-task round trips —
/// against loopback charles_worker services in this process.
///
/// Results are recorded in BENCH_shards.json (working directory), including
/// the per-task-kind coordinator timings of the ShardTask protocol
/// (kSignalStats / kLeafMoments / kScorePartials), the row-free scoring
/// counters (candidates scored from partials vs central ŷ
/// materializations), the warm-context cells' elision counters, and the
/// remote cells' dispatch/install/retry counters. `--smoke` runs a reduced
/// grid and exits non-zero if any sharded ranking diverges from the
/// unsharded baseline (top signature + bit-equal score — the score-parity
/// tripwire), any engine run materialized a central ŷ vector (row-free
/// scoring must fully cover Phase3Fits: zero y_hat bytes), the sharded
/// end-to-end time blows past a generous overhead ceiling, a warm-context
/// repeat run fails to elide every kLeafMoments task, or a remote cell
/// needed a retry (loopback workers never legitimately fail) — the CI
/// tripwires for the distributed path.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "distributed/worker_service.h"
#include "workload/employee_gen.h"

namespace charles {
namespace bench {
namespace {

struct GridRow {
  std::string backend;
  std::string mode = "cold";  ///< "cold", or "warm" (repeat on a warm context)
  int shards = 0;  ///< 0 = unsharded engine (the baseline)
  int threads = 1;
  double total_s = 0.0;
  double shard_s = 0.0;   ///< coordinator fan-out + merge, all task rounds
  double signal_s = 0.0;  ///< kSignalStats round
  double moments_s = 0.0; ///< kLeafMoments round
  double score_s = 0.0;   ///< kScorePartials round
  int64_t rows_scanned = 0;
  int64_t score_probes = 0;      ///< models probed by the score round
  int64_t score_candidates = 0;  ///< candidates scored row-free (partials)
  int64_t yhat_mats = 0;         ///< central ŷ materializations (must be 0)
  int64_t leaves_swept = 0;   ///< kLeafMoments leaves actually requested
  int64_t leaves_elided = 0;  ///< leaves skipped via the warm fit cache
  int64_t remote_tasks = 0;     ///< kRemote: tasks dispatched to the fleet
  int64_t remote_installs = 0;  ///< kRemote: install bundles shipped
  int64_t remote_retries = 0;   ///< kRemote: transport-failure reassignments
  bool identical = true;  ///< ranking bit-identical to the baseline
};

struct Baseline {
  std::string signature;
  double score = 0.0;
  size_t count = 0;
};

GridRow RunCell(const Table& source, const Table& target, int shards,
                ShardBackendKind backend, int threads, int64_t block_rows,
                Baseline* baseline, EngineContext* context = nullptr,
                const char* mode = "cold",
                const std::vector<std::string>* remote_workers = nullptr) {
  CharlesOptions options = DefaultBenchOptions("bonus", "emp_id");
  options.num_threads = threads;
  options.stats_block_rows = block_rows;
  options.num_shards = shards;
  options.shard_backend = backend;
  if (backend == ShardBackendKind::kRemote) {
    CHARLES_CHECK(remote_workers != nullptr && !remote_workers->empty());
    options.remote_workers = *remote_workers;
    options.remote_retry_backoff_ms = 1;  // loopback: fail fast, not slow
  }

  auto start = std::chrono::steady_clock::now();
  SummaryList result =
      context != nullptr
          ? SummarizeChanges(source, target, options, context).ValueOrDie()
          : SummarizeChanges(source, target, options).ValueOrDie();
  GridRow row;
  row.backend = shards == 0                                  ? "none"
                : backend == ShardBackendKind::kInProcess    ? "in-process"
                : backend == ShardBackendKind::kSubprocess   ? "subprocess"
                                                             : "remote";
  row.mode = mode;
  row.shards = shards;
  row.threads = threads;
  row.total_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  row.shard_s = result.shard_seconds;
  row.signal_s = result.shard_signal_seconds;
  row.moments_s = result.shard_moments_seconds;
  row.score_s = result.shard_score_seconds;
  row.rows_scanned = result.shard_rows_scanned;
  row.score_probes = result.shard_score_probes;
  row.score_candidates = result.score_partials_candidates;
  row.yhat_mats = result.score_yhat_materializations;
  row.leaves_swept = result.shard_moment_leaves_swept;
  row.leaves_elided = result.shard_moment_leaves_elided;
  row.remote_tasks = result.remote_tasks_dispatched;
  row.remote_installs = result.remote_input_installs;
  row.remote_retries = result.remote_task_retries;

  CHARLES_CHECK(!result.summaries.empty());
  if (baseline->count == 0) {
    baseline->signature = result.summaries[0].Signature();
    baseline->score = result.summaries[0].scores().score;
    baseline->count = result.summaries.size();
  } else {
    double score = result.summaries[0].scores().score;
    row.identical = result.summaries[0].Signature() == baseline->signature &&
                    std::memcmp(&score, &baseline->score, sizeof(double)) == 0 &&
                    result.summaries.size() == baseline->count;
  }
  return row;
}

std::vector<GridRow> RunGrid(bool smoke) {
  EmployeeGenOptions gen;
  gen.num_rows = smoke ? 4000 : 20000;
  gen.num_decoy_numeric = 1;
  gen.num_decoy_categorical = 1;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
  const int64_t block_rows = 256;  // 4k rows = 16 blocks, so 8 shards exist

  // Two loopback charles_worker services in this process back the remote
  // cells — the same topology the CI loopback job runs.
  std::vector<std::unique_ptr<LoopbackWorker>> workers;
  std::vector<std::string> worker_endpoints;
  for (int i = 0; i < 2; ++i) {
    workers.push_back(LoopbackWorker::Start().ValueOrDie());
    worker_endpoints.push_back(workers.back()->endpoint());
  }

  std::vector<GridRow> grid;
  Baseline baseline;
  if (smoke) {
    grid.push_back(RunCell(source, target, 0, ShardBackendKind::kInProcess, 2,
                           block_rows, &baseline));
    for (int shards : {2, 8}) {
      grid.push_back(RunCell(source, target, shards, ShardBackendKind::kInProcess,
                             2, block_rows, &baseline));
    }
    grid.push_back(RunCell(source, target, 2, ShardBackendKind::kSubprocess, 2,
                           block_rows, &baseline));
    // Remote parity cells: the smoke tripwire below asserts bit-identical
    // rankings, dispatched tasks, and zero transport retries.
    for (int shards : {2, 8}) {
      grid.push_back(RunCell(source, target, shards, ShardBackendKind::kRemote,
                             2, block_rows, &baseline, nullptr, "cold",
                             &worker_endpoints));
    }
    // Warm-context pair: the repeat run must serve every fit from the
    // context cache and elide every kLeafMoments task (the smoke tripwire
    // below asserts it).
    {
      EngineContextOptions ctx_options;
      ctx_options.num_threads = 2;
      EngineContext context(ctx_options);
      grid.push_back(RunCell(source, target, 2, ShardBackendKind::kInProcess, 2,
                             block_rows, &baseline, &context, "cold"));
      grid.push_back(RunCell(source, target, 2, ShardBackendKind::kInProcess, 2,
                             block_rows, &baseline, &context, "warm"));
    }
    return grid;
  }
  for (int threads : {1, 4}) {
    Baseline per_thread_baseline;
    grid.push_back(RunCell(source, target, 0, ShardBackendKind::kInProcess, threads,
                           block_rows, &per_thread_baseline));
    for (ShardBackendKind backend :
         {ShardBackendKind::kInProcess, ShardBackendKind::kSubprocess,
          ShardBackendKind::kRemote}) {
      for (int shards : {1, 2, 4, 8}) {
        grid.push_back(RunCell(source, target, shards, backend, threads,
                               block_rows, &per_thread_baseline, nullptr,
                               "cold", &worker_endpoints));
      }
    }
    // Warm-context pair at 4 shards: prices the elision path.
    EngineContextOptions ctx_options;
    ctx_options.num_threads = threads;
    EngineContext context(ctx_options);
    grid.push_back(RunCell(source, target, 4, ShardBackendKind::kInProcess,
                           threads, block_rows, &per_thread_baseline, &context,
                           "cold"));
    grid.push_back(RunCell(source, target, 4, ShardBackendKind::kInProcess,
                           threads, block_rows, &per_thread_baseline, &context,
                           "warm"));
  }
  return grid;
}

void PrintGrid(const std::vector<GridRow>& grid) {
  std::vector<int> widths = {11, 5, 7, 8, 9, 9, 9, 9, 9, 13, 7, 9, 8, 8, 10};
  PrintRule(widths);
  PrintTableRow(widths,
                {"backend", "mode", "shards", "threads", "total s", "shard s",
                 "signal s", "momnt s", "score s", "rows scanned", "elided",
                 "scored", "r tasks", "retries", "identical"});
  PrintRule(widths);
  for (const GridRow& r : grid) {
    PrintTableRow(widths,
                  {r.backend, r.mode, std::to_string(r.shards),
                   std::to_string(r.threads), Fmt(r.total_s, 3),
                   Fmt(r.shard_s, 4), Fmt(r.signal_s, 4), Fmt(r.moments_s, 4),
                   Fmt(r.score_s, 4), std::to_string(r.rows_scanned),
                   std::to_string(r.leaves_elided),
                   std::to_string(r.score_candidates),
                   std::to_string(r.remote_tasks),
                   std::to_string(r.remote_retries),
                   r.identical ? "yes" : "NO"});
  }
  PrintRule(widths);
}

void WriteJson(const std::string& path, const std::vector<GridRow>& grid) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"grid\": [\n");
  for (size_t i = 0; i < grid.size(); ++i) {
    const GridRow& r = grid[i];
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"mode\": \"%s\", \"shards\": %d, "
                 "\"threads\": %d, \"total_s\": %.5f, \"shard_s\": %.5f, "
                 "\"signal_s\": %.5f, \"moments_s\": %.5f, \"score_s\": %.5f, "
                 "\"rows_scanned\": %lld, \"leaves_swept\": %lld, "
                 "\"leaves_elided\": %lld, \"score_probes\": %lld, "
                 "\"score_candidates\": %lld, \"yhat_materializations\": %lld, "
                 "\"remote_tasks\": %lld, "
                 "\"remote_installs\": %lld, \"remote_retries\": %lld, "
                 "\"identical\": %s}%s\n",
                 r.backend.c_str(), r.mode.c_str(), r.shards, r.threads,
                 r.total_s, r.shard_s, r.signal_s, r.moments_s, r.score_s,
                 static_cast<long long>(r.rows_scanned),
                 static_cast<long long>(r.leaves_swept),
                 static_cast<long long>(r.leaves_elided),
                 static_cast<long long>(r.score_probes),
                 static_cast<long long>(r.score_candidates),
                 static_cast<long long>(r.yhat_mats),
                 static_cast<long long>(r.remote_tasks),
                 static_cast<long long>(r.remote_installs),
                 static_cast<long long>(r.remote_retries),
                 r.identical ? "true" : "false", i + 1 < grid.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nrecorded the grid in %s\n", path.c_str());
}

void BM_ShardedEndToEnd(benchmark::State& state) {
  EmployeeGenOptions gen;
  gen.num_rows = 10000;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
  CharlesOptions options = DefaultBenchOptions("bonus", "emp_id");
  options.num_threads = 4;
  options.stats_block_rows = 256;
  options.num_shards = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SummarizeChanges(source, target, options).ValueOrDie());
  }
}
BENCHMARK(BM_ShardedEndToEnd)->Arg(0)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace charles

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  charles::bench::PrintHeader(
      std::string("D1: distributed shard execution, shards x threads") +
          (smoke ? " (smoke)" : ""),
      "sharded rankings bit-identical to the unsharded engine at every cell");
  std::vector<charles::bench::GridRow> grid = charles::bench::RunGrid(smoke);
  charles::bench::PrintGrid(grid);
  charles::bench::WriteJson("BENCH_shards.json", grid);

  for (const charles::bench::GridRow& row : grid) {
    if (!row.identical) {
      std::fprintf(stderr,
                   "FAIL: %s backend at %d shards diverged from the unsharded "
                   "ranking\n",
                   row.backend.c_str(), row.shards);
      return 1;
    }
  }
  if (smoke) {
    // The unsharded cell is first; sharded cells may pay coordinator
    // overhead but an end-to-end blowup (> 4x) marks a real regression.
    double baseline_s = grid.front().total_s;
    for (const charles::bench::GridRow& row : grid) {
      if (row.shards > 0 && row.total_s > 4.0 * baseline_s + 0.5) {
        std::fprintf(stderr,
                     "FAIL: %s backend at %d shards took %.3fs vs %.3fs "
                     "unsharded (> 4x + 0.5s)\n",
                     row.backend.c_str(), row.shards, row.total_s, baseline_s);
        return 1;
      }
    }
    // Row-free scoring tripwire: every engine run — sharded or not — must
    // score all its candidates from merged ScorePartials without ever
    // materializing a run-wide ŷ vector. A single materialization means a
    // candidate fell off the partials path (a per-candidate O(rows)
    // allocation snuck back into the hot loop).
    for (const charles::bench::GridRow& row : grid) {
      if (row.yhat_mats != 0 || row.score_candidates == 0) {
        std::fprintf(stderr,
                     "FAIL: %s backend at %d shards scored %lld candidates "
                     "from partials with %lld central y_hat "
                     "materializations; expected >0 and exactly 0\n",
                     row.backend.c_str(), row.shards,
                     static_cast<long long>(row.score_candidates),
                     static_cast<long long>(row.yhat_mats));
        return 1;
      }
    }
    // Warm-elision tripwire: the warm-context repeat run must issue zero
    // kLeafMoments tasks (every leaf elided via the warm fit cache).
    bool saw_warm = false;
    for (const charles::bench::GridRow& row : grid) {
      if (row.mode != "warm") continue;
      saw_warm = true;
      if (row.leaves_swept != 0 || row.leaves_elided == 0) {
        std::fprintf(stderr,
                     "FAIL: warm-context run swept %lld leaves (elided %lld); "
                     "expected full kLeafMoments elision\n",
                     static_cast<long long>(row.leaves_swept),
                     static_cast<long long>(row.leaves_elided));
        return 1;
      }
    }
    if (!saw_warm) {
      std::fprintf(stderr, "FAIL: smoke grid is missing the warm-context cell\n");
      return 1;
    }
    // Remote-parity tripwire: loopback workers never legitimately fail, so a
    // remote cell with zero dispatches (fleet never used) or any transport
    // retry marks a broken remote path even when the ranking happens to match.
    bool saw_remote = false;
    for (const charles::bench::GridRow& row : grid) {
      if (row.backend != "remote") continue;
      saw_remote = true;
      if (row.remote_tasks == 0 || row.remote_retries != 0 ||
          row.remote_installs == 0) {
        std::fprintf(stderr,
                     "FAIL: remote cell at %d shards dispatched %lld tasks, "
                     "%lld installs, %lld retries; expected >0 tasks, >0 "
                     "installs, 0 retries over loopback\n",
                     row.shards, static_cast<long long>(row.remote_tasks),
                     static_cast<long long>(row.remote_installs),
                     static_cast<long long>(row.remote_retries));
        return 1;
      }
    }
    if (!saw_remote) {
      std::fprintf(stderr, "FAIL: smoke grid is missing the remote cells\n");
      return 1;
    }
    std::printf("smoke OK: every sharded cell (including remote loopback) "
                "bit-identical, all candidates scored row-free (zero central "
                "y_hat bytes), overhead within bounds, warm run elided every "
                "leaf-moments task, zero remote retries\n");
    return 0;
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
