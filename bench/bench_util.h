#ifndef CHARLES_BENCH_BENCH_UTIL_H_
#define CHARLES_BENCH_BENCH_UTIL_H_

/// \file
/// Shared helpers for the experiment benches: fixed-width table printing and
/// canonical workload constructions. Every bench binary prints the rows or
/// series of its experiment (EXPERIMENTS.md records paper-vs-measured) and
/// then runs its google-benchmark timings.

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/charles.h"
#include "workload/policy.h"

namespace charles {
namespace bench {

/// Prints a horizontal rule sized to the given column widths.
inline void PrintRule(const std::vector<int>& widths) {
  std::string line = "+";
  for (int w : widths) {
    line += std::string(static_cast<size_t>(w) + 2, '-');
    line += "+";
  }
  std::printf("%s\n", line.c_str());
}

/// Prints one table row with the given per-column widths.
inline void PrintTableRow(const std::vector<int>& widths,
                          const std::vector<std::string>& cells) {
  CHARLES_CHECK_EQ(widths.size(), cells.size());
  std::string line = "|";
  for (size_t i = 0; i < cells.size(); ++i) {
    line += " " + PadRight(cells[i], static_cast<size_t>(widths[i])) + " |";
  }
  std::printf("%s\n", line.c_str());
}

inline std::string Fmt(double v, int decimals = 4) { return FormatDouble(v, decimals); }

/// Banner for an experiment section.
inline void PrintHeader(const std::string& experiment, const std::string& claim) {
  std::printf("\n=== %s ===\n", experiment.c_str());
  if (!claim.empty()) std::printf("paper anchor: %s\n\n", claim.c_str());
}

/// Worker threads every bench runs the engine with. Defaults to 1 so timings
/// stay comparable across machines; override with CHARLES_BENCH_THREADS=<n>
/// (0 = hardware concurrency). bench_parallel_scaling sweeps explicitly.
int BenchThreads();

/// The engine options every experiment starts from (the demo defaults, at
/// BenchThreads() worker threads).
inline CharlesOptions DefaultBenchOptions(const std::string& target,
                                          const std::string& key) {
  CharlesOptions options;
  options.target_attribute = target;
  options.key_columns = {key};
  options.num_threads = BenchThreads();
  return options;
}

/// Same options with an explicit thread count (for scaling sweeps).
inline CharlesOptions WithThreads(CharlesOptions options, int num_threads) {
  options.num_threads = num_threads;
  return options;
}

/// \brief The R4-style baseline: one global regression, no partitioning
/// ("Everyone receives about 6% increase on last year's bonus").
Result<ChangeSummary> BuildGlobalRegressionBaseline(const CharlesEngine& engine,
                                                    const Table& source,
                                                    const std::vector<double>& y_old,
                                                    const std::vector<double>& y_new);

/// \brief The exhaustive cell-level diff "summary": one CT per changed row,
/// keyed by the primary key — perfectly accurate, catastrophically verbose
/// (the related-work strawman ChARLES improves on).
Result<ChangeSummary> BuildCellDiffBaseline(const CharlesOptions& options,
                                            const Table& source,
                                            const std::vector<double>& y_old,
                                            const std::vector<double>& y_new);

}  // namespace bench
}  // namespace charles

#endif  // CHARLES_BENCH_BENCH_UTIL_H_
