#include "bench_util.h"

#include "core/scoring.h"
#include "ml/decision_tree.h"

#include <cerrno>
#include <cstdlib>
#include <limits>

namespace charles {
namespace bench {

int BenchThreads() {
  const char* env = std::getenv("CHARLES_BENCH_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  errno = 0;
  long threads = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || threads < 0 || errno == ERANGE ||
      threads > std::numeric_limits<int>::max()) {
    std::fprintf(stderr,
                 "CHARLES_BENCH_THREADS='%s' is not a non-negative integer; "
                 "using 1 thread\n",
                 env);
    return 1;
  }
  return static_cast<int>(threads);
}

Result<ChangeSummary> BuildGlobalRegressionBaseline(const CharlesEngine& engine,
                                                    const Table& source,
                                                    const std::vector<double>& y_old,
                                                    const std::vector<double>& y_new) {
  // A single TRUE-conditioned partition over every row, transformed by a
  // regression on the target's old value.
  PartitionCandidate universal;
  DecisionTree::Leaf leaf;
  leaf.condition = MakeTrue();
  leaf.rows = RowSet::All(source.num_rows());
  universal.leaves.push_back(std::move(leaf));
  universal.k = 1;
  return engine.BuildSummary(source, y_old, y_new, universal,
                             {engine.options().target_attribute}, {});
}

Result<ChangeSummary> BuildCellDiffBaseline(const CharlesOptions& options,
                                            const Table& source,
                                            const std::vector<double>& y_old,
                                            const std::vector<double>& y_new) {
  if (options.key_columns.size() != 1) {
    return Status::InvalidArgument("cell-diff baseline expects a single key column");
  }
  const std::string& key = options.key_columns[0];
  std::vector<ConditionalTransform> cts;
  for (int64_t row = 0; row < source.num_rows(); ++row) {
    double delta = y_new[static_cast<size_t>(row)] - y_old[static_cast<size_t>(row)];
    if (std::abs(delta) <= options.numeric_tolerance) continue;
    ConditionalTransform ct;
    CHARLES_ASSIGN_OR_RETURN(Value key_value, source.GetValueByName(row, key));
    ct.condition = MakeColumnCompare(key, CompareOp::kEq, key_value);
    LinearModel constant;
    constant.intercept = y_new[static_cast<size_t>(row)];
    ct.transform = LinearTransform::Linear(options.target_attribute, constant);
    ct.rows = RowSet({row});
    ct.coverage = RowSet({row}).Coverage(source.num_rows());
    ct.partition_mae = 0.0;
    cts.push_back(std::move(ct));
  }
  ChangeSummary summary(std::move(cts), options.target_attribute);
  Scorer scorer(options, y_old, y_new);
  CHARLES_ASSIGN_OR_RETURN(ScoreBreakdown scores,
                           scorer.ApplyAndScore(summary, source));
  summary.set_scores(scores);
  return summary;
}

}  // namespace bench
}  // namespace charles
