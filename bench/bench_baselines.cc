/// \file
/// Experiment E6 (Example 1's R4 vs {R1,R2,R3}; related-work contrast): the
/// three-way comparison the paper's introduction motivates. A global single
/// regression (R4 analogue) is interpretable but inaccurate; the exhaustive
/// cell-level diff is exact but unreadable; ChARLES dominates both on the
/// combined score.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/example1.h"
#include "workload/montgomery_gen.h"

namespace charles {
namespace bench {
namespace {

void CompareOn(const std::string& title, const Table& source, const Table& target,
               const CharlesOptions& options) {
  std::printf("-- %s --\n", title.c_str());
  CharlesEngine engine(options);
  SummaryList result = engine.Run(source, target).ValueOrDie();
  const ChangeSummary& charles_summary = result.summaries[0];

  DiffOptions diff_options;
  diff_options.key_columns = options.key_columns;
  SnapshotDiff diff = SnapshotDiff::Compute(source, target, diff_options).ValueOrDie();
  std::vector<double> y_old = *diff.SourceValues(options.target_attribute);
  std::vector<double> y_new = *diff.TargetValues(options.target_attribute);

  ChangeSummary global =
      BuildGlobalRegressionBaseline(engine, source, y_old, y_new).ValueOrDie();
  ChangeSummary cell_diff =
      BuildCellDiffBaseline(options, source, y_old, y_new).ValueOrDie();

  std::vector<int> widths = {26, 6, 9, 9, 9};
  PrintRule(widths);
  PrintTableRow(widths, {"method", "#CTs", "accuracy", "interp", "score"});
  PrintRule(widths);
  auto row = [&](const std::string& name, const ChangeSummary& s) {
    PrintTableRow(widths, {name, std::to_string(s.num_cts()), Fmt(s.scores().accuracy),
                           Fmt(s.scores().interpretability), Fmt(s.scores().score)});
  };
  row("ChARLES (top summary)", charles_summary);
  row("global regression (R4)", global);
  row("cell-level diff", cell_diff);
  PrintRule(widths);
  bool charles_wins = charles_summary.scores().score > global.scores().score &&
                      charles_summary.scores().score > cell_diff.scores().score;
  std::printf("ChARLES wins on combined score: %s\n\n", charles_wins ? "yes" : "NO");
}

void PrintExperiment() {
  PrintHeader("E6: ChARLES vs global regression vs cell-level diff",
              "R4 'does not accurately capture the change'; cell lists "
              "'overwhelm the user'; ChARLES balances both");
  {
    Table source = MakeExample1Source().ValueOrDie();
    Table target = MakeExample1Target().ValueOrDie();
    CompareOn("Example 1 (9 rows)", source, target,
              DefaultBenchOptions("bonus", "name"));
  }
  {
    MontgomeryGenOptions gen;
    gen.num_rows = 3000;
    Table source = GenerateMontgomery2016(gen).ValueOrDie();
    Table target = GenerateMontgomery2017(source).ValueOrDie();
    CompareOn("Montgomery-style synthetic (3000 rows)", source, target,
              DefaultBenchOptions("base_salary", "employee_id"));
  }
}

void BM_CellDiffBaseline(benchmark::State& state) {
  MontgomeryGenOptions gen;
  gen.num_rows = state.range(0);
  Table source = GenerateMontgomery2016(gen).ValueOrDie();
  Table target = GenerateMontgomery2017(source).ValueOrDie();
  CharlesOptions options = DefaultBenchOptions("base_salary", "employee_id");
  DiffOptions diff_options;
  diff_options.key_columns = options.key_columns;
  SnapshotDiff diff = SnapshotDiff::Compute(source, target, diff_options).ValueOrDie();
  std::vector<double> y_old = *diff.SourceValues(options.target_attribute);
  std::vector<double> y_new = *diff.TargetValues(options.target_attribute);
  for (auto _ : state) {
    ChangeSummary baseline =
        BuildCellDiffBaseline(options, source, y_old, y_new).ValueOrDie();
    benchmark::DoNotOptimize(baseline.scores().score);
  }
}
BENCHMARK(BM_CellDiffBaseline)->Arg(3000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace charles

int main(int argc, char** argv) {
  charles::bench::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
