/// \file
/// Experiment E10 (§2 normality desideratum: "5% is more normal than
/// 2.479%"): ablation of constant snapping. With snapping on, fitted rules on
/// noisy data land on the planted round constants; with it off, raw OLS
/// coefficients leak into the summaries and the normality sub-score drops.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/employee_gen.h"

namespace charles {
namespace bench {
namespace {

struct AblationOutcome {
  double normality;
  double interpretability;
  double accuracy;
  double score;
  double coefficient_error;
};

AblationOutcome RunWith(bool snapping, double noise) {
  EmployeeGenOptions gen;
  gen.num_rows = 2000;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Policy policy = MakeEmployeeBonusPolicy();
  PolicyApplicationOptions apply_options;
  apply_options.noise_stddev = noise;
  apply_options.seed = 3;
  Table target = policy.Apply(source, apply_options).ValueOrDie();
  CharlesOptions options = DefaultBenchOptions("bonus", "emp_id");
  options.normality.enable_snapping = snapping;
  SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
  const ChangeSummary& top = result.summaries[0];
  RecoveryOptions recovery_options;
  recovery_options.min_partition_jaccard = 0.85;
  recovery_options.transform_tolerance = 0.05;
  RecoveryReport recovery =
      EvaluateRecovery(policy, top, source, recovery_options).ValueOrDie();
  return AblationOutcome{top.scores().normality, top.scores().interpretability,
                         top.scores().accuracy, top.scores().score,
                         recovery.mean_coefficient_error};
}

void PrintExperiment() {
  PrintHeader("E10: normality snapping ablation",
              "snapping recovers the planted round constants under noise at "
              "negligible accuracy cost");

  std::vector<int> widths = {12, 10, 10, 9, 9, 9, 10};
  PrintRule(widths);
  PrintTableRow(widths, {"noise sigma", "snapping", "normality", "interp", "accuracy",
                         "score", "coef err"});
  PrintRule(widths);
  for (double noise : {0.0, 20.0, 50.0}) {
    for (bool snapping : {true, false}) {
      AblationOutcome outcome = RunWith(snapping, noise);
      PrintTableRow(widths,
                    {Fmt(noise, 0), snapping ? "on" : "off", Fmt(outcome.normality, 3),
                     Fmt(outcome.interpretability, 3), Fmt(outcome.accuracy, 3),
                     Fmt(outcome.score, 3), Fmt(outcome.coefficient_error, 4)});
    }
  }
  PrintRule(widths);
}

void BM_SnappingRun(benchmark::State& state) {
  EmployeeGenOptions gen;
  gen.num_rows = 2000;
  Table source = GenerateEmployees(gen).ValueOrDie();
  PolicyApplicationOptions apply_options;
  apply_options.noise_stddev = 20.0;
  Table target = MakeEmployeeBonusPolicy().Apply(source, apply_options).ValueOrDie();
  CharlesOptions options = DefaultBenchOptions("bonus", "emp_id");
  options.normality.enable_snapping = state.range(0) != 0;
  for (auto _ : state) {
    SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
    benchmark::DoNotOptimize(result.summaries[0].scores().score);
  }
}
BENCHMARK(BM_SnappingRun)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace charles

int main(int argc, char** argv) {
  charles::bench::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
