/// \file
/// Experiment E5 (§2 "the search space for possible summaries can explode"):
/// candidate-space size and runtime as a function of the number of candidate
/// attributes and of the user caps c (condition attrs) and t (transform
/// attrs). The setup assistant's shortlist is what keeps this tractable.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/employee_gen.h"

namespace charles {
namespace bench {
namespace {

void PrintExperiment() {
  PrintHeader("E5: search-space growth vs candidate attributes and (c, t)",
              "subset counts grow combinatorially; shortlists + caps keep runs "
              "interactive");

  // Sweep 1: decoy attributes widen the candidate pool (caps lifted so the
  // growth is visible).
  std::printf("-- candidate pool growth (c=3, t=2, shortlist caps lifted) --\n");
  std::vector<int> widths = {8, 10, 10, 12, 11, 9};
  PrintRule(widths);
  PrintTableRow(widths, {"decoys", "C subsets", "T subsets", "partitions",
                         "candidates", "total s"});
  PrintRule(widths);
  for (int decoys : {0, 4, 8}) {
    EmployeeGenOptions gen;
    gen.num_rows = 1000;
    gen.num_decoy_numeric = decoys / 2;
    gen.num_decoy_categorical = decoys / 2;
    Table source = GenerateEmployees(gen).ValueOrDie();
    Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
    CharlesOptions options = DefaultBenchOptions("bonus", "emp_id");
    options.max_condition_candidates = 4 + decoys;  // lift the shortlist cap
    options.max_transform_candidates = 3 + decoys / 2;
    options.min_condition_candidates = 4 + decoys;  // force-keep decoys
    options.min_transform_candidates = 3 + decoys / 2;
    SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
    PrintTableRow(widths,
                  {std::to_string(decoys), std::to_string(result.condition_subsets),
                   std::to_string(result.transform_subsets),
                   std::to_string(result.partitions),
                   std::to_string(result.candidates_evaluated),
                   Fmt(result.elapsed_seconds, 2)});
  }
  PrintRule(widths);

  // Sweep 2: the (c, t) caps at a fixed candidate pool.
  std::printf("\n-- user caps c and t (8 decoys, shortlists capped at 6/5) --\n");
  std::vector<int> widths2 = {6, 6, 10, 10, 11, 9, 9};
  PrintRule(widths2);
  PrintTableRow(widths2,
                {"c", "t", "C subsets", "T subsets", "candidates", "total s", "top acc"});
  PrintRule(widths2);
  EmployeeGenOptions gen;
  gen.num_rows = 1000;
  gen.num_decoy_numeric = 4;
  gen.num_decoy_categorical = 4;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
  for (int c : {1, 2, 3, 4}) {
    for (int t : {1, 2}) {
      CharlesOptions options = DefaultBenchOptions("bonus", "emp_id");
      options.max_condition_attrs = c;
      options.max_transform_attrs = t;
      SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
      PrintTableRow(widths2,
                    {std::to_string(c), std::to_string(t),
                     std::to_string(result.condition_subsets),
                     std::to_string(result.transform_subsets),
                     std::to_string(result.candidates_evaluated),
                     Fmt(result.elapsed_seconds, 2),
                     Fmt(result.summaries[0].scores().accuracy, 3)});
    }
  }
  PrintRule(widths2);
}

void BM_SearchSpaceDecoys(benchmark::State& state) {
  EmployeeGenOptions gen;
  gen.num_rows = 1000;
  gen.num_decoy_numeric = static_cast<int>(state.range(0)) / 2;
  gen.num_decoy_categorical = static_cast<int>(state.range(0)) / 2;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
  CharlesOptions options = DefaultBenchOptions("bonus", "emp_id");
  for (auto _ : state) {
    SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
    benchmark::DoNotOptimize(result.candidates_evaluated);
  }
}
BENCHMARK(BM_SearchSpaceDecoys)->Arg(0)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace charles

int main(int argc, char** argv) {
  charles::bench::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
