/// \file
/// Experiment O1 (ISSUE 9 / ROADMAP "observability"): serving saturation.
///
/// One long-lived EngineContext (shared pool + cross-run leaf-fit cache,
/// bounded admission) answers sustained concurrent Find() load from N client
/// threads. Each level of the sweep records throughput, the request-latency
/// distribution (p50/p90/p99 from an obs::Histogram — the same instrument
/// the engine's own metrics use), and the cache trajectory (hit/miss deltas
/// against the context cache), so the artifact shows the cold->warm
/// transition and how latency degrades as clients oversubscribe the pool.
///
/// Every request's ranking is checked bit-identical to a serial baseline —
/// concurrency that changes an answer is a bug, not a throughput result.
/// Results land in BENCH_serving.json (working directory), including a full
/// MetricsRegistry snapshot so the engine-side instruments (admission
/// counters, cache gauges, run-latency histogram) are captured alongside
/// the client-side view. `--smoke` runs a reduced sweep and exits non-zero
/// if any request diverges from the baseline, a queued admission was
/// rejected, the warm levels stop hitting the cache, or concurrent p99 blows
/// past a generous multiple of the warm serial mean — the CI tripwires for
/// the serving path.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "core/engine_context.h"
#include "obs/metrics.h"
#include "workload/employee_gen.h"

namespace charles {
namespace bench {
namespace {

struct Baseline {
  std::string signature;
  double score = 0.0;
  size_t count = 0;
};

struct ServingRow {
  int clients = 1;
  int64_t requests = 0;
  double wall_s = 0.0;
  double throughput_rps = 0.0;
  double mean_s = 0.0;
  double p50_s = 0.0;
  double p90_s = 0.0;
  double p99_s = 0.0;
  int64_t cache_hits_delta = 0;    ///< context-cache hits during the level
  int64_t cache_misses_delta = 0;  ///< context-cache misses during the level
  int64_t cache_entries = 0;       ///< fits resident after the level
  int64_t queued_delta = 0;        ///< admissions that waited for a slot
  int64_t rejected_delta = 0;      ///< admissions refused (must stay 0: kQueue)
  bool identical = true;           ///< every ranking matched the baseline
};

/// One request against the shared context; returns its latency and checks
/// the ranking against the serial baseline.
double ServeOne(const Table& source, const Table& target,
                const CharlesOptions& options, EngineContext* context,
                const Baseline& baseline, std::atomic<bool>* identical) {
  auto start = std::chrono::steady_clock::now();
  SummaryList result =
      SummarizeChanges(source, target, options, context).ValueOrDie();
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  CHARLES_CHECK(!result.summaries.empty());
  double score = result.summaries[0].scores().score;
  if (result.summaries[0].Signature() != baseline.signature ||
      std::memcmp(&score, &baseline.score, sizeof(double)) != 0 ||
      result.summaries.size() != baseline.count) {
    identical->store(false, std::memory_order_relaxed);
  }
  return elapsed;
}

/// Runs one saturation level: `clients` threads, each issuing
/// `requests_per_client` back-to-back Find() calls against the context.
ServingRow RunLevel(const Table& source, const Table& target,
                    const CharlesOptions& options, EngineContext* context,
                    int clients, int requests_per_client,
                    const Baseline& baseline) {
  obs::Histogram latency(obs::Histogram::DefaultLatencyBounds());
  std::atomic<bool> identical{true};
  const int64_t hits_before = context->leaf_cache_hits();
  const int64_t misses_before = context->leaf_cache_misses();
  const int64_t queued_before = context->runs_queued();
  const int64_t rejected_before = context->runs_rejected();

  auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&]() {
      for (int i = 0; i < requests_per_client; ++i) {
        latency.Observe(
            ServeOne(source, target, options, context, baseline, &identical));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  ServingRow row;
  row.clients = clients;
  row.requests = static_cast<int64_t>(clients) * requests_per_client;
  row.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             wall_start)
                   .count();
  row.throughput_rps =
      row.wall_s > 0 ? static_cast<double>(row.requests) / row.wall_s : 0.0;
  row.mean_s =
      latency.Count() > 0 ? latency.Sum() / static_cast<double>(latency.Count())
                          : 0.0;
  row.p50_s = latency.P50();
  row.p90_s = latency.P90();
  row.p99_s = latency.P99();
  row.cache_hits_delta = context->leaf_cache_hits() - hits_before;
  row.cache_misses_delta = context->leaf_cache_misses() - misses_before;
  row.cache_entries = static_cast<int64_t>(context->leaf_cache_entries());
  row.queued_delta = context->runs_queued() - queued_before;
  row.rejected_delta = context->runs_rejected() - rejected_before;
  row.identical = identical.load(std::memory_order_relaxed);
  return row;
}

struct SweepResult {
  double cold_s = 0.0;  ///< the one cold request that warmed the context
  std::vector<ServingRow> levels;
};

SweepResult RunSweep(bool smoke) {
  EmployeeGenOptions gen;
  gen.num_rows = smoke ? 2000 : 8000;
  gen.num_decoy_numeric = 1;
  gen.num_decoy_categorical = 1;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();

  CharlesOptions options = DefaultBenchOptions("bonus", "emp_id");
  options.num_threads = 2;

  EngineContextOptions ctx_options;
  ctx_options.num_threads = 2;
  ctx_options.max_concurrent_runs = 2;  // oversubscribed levels must queue
  ctx_options.admission = AdmissionPolicy::kQueue;
  EngineContext context(ctx_options);

  // The cold request: pays every leaf fit once, warms the context cache, and
  // pins the baseline every later ranking is compared against bit-for-bit.
  SweepResult sweep;
  Baseline baseline;
  {
    auto start = std::chrono::steady_clock::now();
    SummaryList first =
        SummarizeChanges(source, target, options, &context).ValueOrDie();
    sweep.cold_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    CHARLES_CHECK(!first.summaries.empty());
    baseline.signature = first.summaries[0].Signature();
    baseline.score = first.summaries[0].scores().score;
    baseline.count = first.summaries.size();
  }

  const int requests_per_client = smoke ? 3 : 8;
  const std::vector<int> client_levels =
      smoke ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};
  for (int clients : client_levels) {
    sweep.levels.push_back(RunLevel(source, target, options, &context, clients,
                                    requests_per_client, baseline));
  }
  return sweep;
}

void PrintSweep(const SweepResult& sweep) {
  std::printf("cold request (fills the context cache): %s s\n\n",
              Fmt(sweep.cold_s, 3).c_str());
  std::vector<int> widths = {7, 6, 8, 8, 8, 8, 8, 8, 8, 9, 7, 9};
  PrintRule(widths);
  PrintTableRow(widths, {"clients", "reqs", "wall s", "req/s", "mean s",
                         "p50 s", "p90 s", "p99 s", "hits d", "misses d",
                         "queued", "identical"});
  PrintRule(widths);
  for (const ServingRow& r : sweep.levels) {
    PrintTableRow(widths,
                  {std::to_string(r.clients), std::to_string(r.requests),
                   Fmt(r.wall_s, 3), Fmt(r.throughput_rps, 2),
                   Fmt(r.mean_s, 4), Fmt(r.p50_s, 4), Fmt(r.p90_s, 4),
                   Fmt(r.p99_s, 4), std::to_string(r.cache_hits_delta),
                   std::to_string(r.cache_misses_delta),
                   std::to_string(r.queued_delta),
                   r.identical ? "yes" : "NO"});
  }
  PrintRule(widths);
}

void WriteJson(const std::string& path, const SweepResult& sweep) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"schema_version\": 1,\n  \"cold_s\": %.5f,\n",
               sweep.cold_s);
  std::fprintf(f, "  \"levels\": [\n");
  for (size_t i = 0; i < sweep.levels.size(); ++i) {
    const ServingRow& r = sweep.levels[i];
    std::fprintf(f,
                 "    {\"clients\": %d, \"requests\": %lld, "
                 "\"wall_s\": %.5f, \"throughput_rps\": %.3f, "
                 "\"mean_s\": %.5f, \"p50_s\": %.5f, \"p90_s\": %.5f, "
                 "\"p99_s\": %.5f, \"cache_hits_delta\": %lld, "
                 "\"cache_misses_delta\": %lld, \"cache_entries\": %lld, "
                 "\"queued_delta\": %lld, \"rejected_delta\": %lld, "
                 "\"identical\": %s}%s\n",
                 r.clients, static_cast<long long>(r.requests), r.wall_s,
                 r.throughput_rps, r.mean_s, r.p50_s, r.p90_s, r.p99_s,
                 static_cast<long long>(r.cache_hits_delta),
                 static_cast<long long>(r.cache_misses_delta),
                 static_cast<long long>(r.cache_entries),
                 static_cast<long long>(r.queued_delta),
                 static_cast<long long>(r.rejected_delta),
                 r.identical ? "true" : "false",
                 i + 1 < sweep.levels.size() ? "," : "");
  }
  // The engine-side view of the same sweep: admission counters, cache
  // gauges, and the engine.run_seconds histogram the pipeline feeds.
  std::fprintf(f, "  ],\n  \"metrics\": %s\n}\n",
               obs::MetricsRegistry::Global().ToJson().c_str());
  std::fclose(f);
  std::printf("\nrecorded the sweep in %s\n", path.c_str());
}

void BM_ServingFind(benchmark::State& state) {
  EmployeeGenOptions gen;
  gen.num_rows = 8000;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();
  CharlesOptions options = DefaultBenchOptions("bonus", "emp_id");
  options.num_threads = 2;
  EngineContextOptions ctx_options;
  ctx_options.num_threads = 2;
  EngineContext context(ctx_options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SummarizeChanges(source, target, options, &context).ValueOrDie());
  }
}
BENCHMARK(BM_ServingFind)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace charles

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  charles::bench::PrintHeader(
      std::string("O1: serving saturation, concurrent Find() on one context") +
          (smoke ? " (smoke)" : ""),
      "concurrent rankings bit-identical to the serial baseline at every "
      "level");
  charles::bench::SweepResult sweep = charles::bench::RunSweep(smoke);
  charles::bench::PrintSweep(sweep);
  charles::bench::WriteJson("BENCH_serving.json", sweep);

  for (const charles::bench::ServingRow& row : sweep.levels) {
    if (!row.identical) {
      std::fprintf(stderr,
                   "FAIL: a request at %d clients diverged from the serial "
                   "baseline ranking\n",
                   row.clients);
      return 1;
    }
    if (row.rejected_delta != 0) {
      std::fprintf(stderr,
                   "FAIL: %lld admissions rejected at %d clients under "
                   "AdmissionPolicy::kQueue (must queue, never reject)\n",
                   static_cast<long long>(row.rejected_delta), row.clients);
      return 1;
    }
    // The context was warmed by the cold request, so every level must be
    // served (at least partly) from the cross-run cache.
    if (row.cache_hits_delta == 0) {
      std::fprintf(stderr,
                   "FAIL: level at %d clients recorded zero context-cache "
                   "hits; the cross-run cache is not being consulted\n",
                   row.clients);
      return 1;
    }
  }
  if (smoke) {
    // Levels run on a warm context; the first level (1 client) is the warm
    // serial baseline. Oversubscribed levels queue on 2 run slots, so p99
    // may stack a few runs deep — but a blowup past a generous multiple of
    // the warm serial mean marks a real serving regression.
    const charles::bench::ServingRow& serial = sweep.levels.front();
    const double bound = 25.0 * serial.mean_s + 1.0;
    for (const charles::bench::ServingRow& row : sweep.levels) {
      if (row.p99_s > bound) {
        std::fprintf(stderr,
                     "FAIL: p99 at %d clients is %.4fs vs warm serial mean "
                     "%.4fs (bound %.4fs)\n",
                     row.clients, row.p99_s, serial.mean_s, bound);
        return 1;
      }
    }
    std::printf("smoke OK: every concurrent ranking bit-identical, zero "
                "rejections under queueing, cache hit at every level, p99 "
                "within bounds\n");
    return 0;
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
