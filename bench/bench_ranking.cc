/// \file
/// Experiment E2 (demo step 8): the ranked list of the 10 top-scoring
/// summaries, each with accuracy, interpretability, and overall score. The
/// paper's GUI shows exactly this list; the Example-1 summary leads it and
/// the R4-style global summary ranks below the partitioned explanations.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/example1.h"
#include "workload/montgomery_gen.h"

namespace charles {
namespace bench {
namespace {

void PrintTop10(const std::string& title, const SummaryList& result) {
  std::printf("-- %s --\n", title.c_str());
  std::vector<int> widths = {4, 5, 9, 9, 9, 72};
  PrintRule(widths);
  PrintTableRow(widths, {"rank", "#CTs", "accuracy", "interp", "score", "first CT"});
  PrintRule(widths);
  for (size_t i = 0; i < result.summaries.size(); ++i) {
    const ChangeSummary& s = result.summaries[i];
    std::string first_ct = s.cts().empty() ? "-" : s.cts()[0].ToString();
    if (first_ct.size() > 72) first_ct = first_ct.substr(0, 69) + "...";
    PrintTableRow(widths,
                  {std::to_string(i + 1), std::to_string(s.num_cts()),
                   Fmt(s.scores().accuracy), Fmt(s.scores().interpretability),
                   Fmt(s.scores().score), first_ct});
  }
  PrintRule(widths);
  std::printf("\n");
}

void PrintExperiment() {
  PrintHeader("E2: ranked top-10 summaries (demo step 8)",
              "10 summaries, score-descending; partitioned exact summaries beat "
              "the global R4-style one");

  {
    Table source = MakeExample1Source().ValueOrDie();
    Table target = MakeExample1Target().ValueOrDie();
    CharlesOptions options = DefaultBenchOptions("bonus", "name");
    SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
    PrintTop10("Example 1 (9 rows)", result);
  }
  {
    MontgomeryGenOptions gen;
    gen.num_rows = 3000;
    Table source = GenerateMontgomery2016(gen).ValueOrDie();
    Table target = GenerateMontgomery2017(source).ValueOrDie();
    CharlesOptions options = DefaultBenchOptions("base_salary", "employee_id");
    SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
    PrintTop10("Montgomery-style synthetic (3000 rows)", result);
  }
}

void BM_RankingMontgomery(benchmark::State& state) {
  MontgomeryGenOptions gen;
  gen.num_rows = state.range(0);
  Table source = GenerateMontgomery2016(gen).ValueOrDie();
  Table target = GenerateMontgomery2017(source).ValueOrDie();
  CharlesOptions options = DefaultBenchOptions("base_salary", "employee_id");
  for (auto _ : state) {
    SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
    benchmark::DoNotOptimize(result.summaries.size());
  }
}
BENCHMARK(BM_RankingMontgomery)->Arg(1000)->Arg(3000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace charles

int main(int argc, char** argv) {
  charles::bench::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
