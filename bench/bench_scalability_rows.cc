/// \file
/// Experiment E4 (§1 motivation; demo dataset ~9k employees): end-to-end
/// runtime as the number of rows grows from 1k to 64k on the Montgomery-style
/// workload, with the engine's per-phase breakdown. The shape to reproduce:
/// near-linear growth (clustering and transformation fitting are O(n); the
/// condition-tree sweeps are O(n log n)).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/montgomery_gen.h"

namespace charles {
namespace bench {
namespace {

CharlesOptions ScalabilityOptions() {
  CharlesOptions options = DefaultBenchOptions("base_salary", "employee_id");
  return options;
}

void PrintExperiment() {
  PrintHeader("E4: runtime vs rows (paper's ~9k-employee demo scale)",
              "interactive at demo scale; near-linear growth");
  std::vector<int> widths = {8, 10, 10, 10, 10, 9, 10};
  PrintRule(widths);
  PrintTableRow(widths, {"rows", "total s", "cluster s", "induce s", "fit s",
                         "top acc", "top score"});
  PrintRule(widths);
  for (int64_t rows : {1000, 2000, 4000, 9000, 16000}) {
    MontgomeryGenOptions gen;
    gen.num_rows = rows;
    Table source = GenerateMontgomery2016(gen).ValueOrDie();
    Table target = GenerateMontgomery2017(source).ValueOrDie();
    SummaryList result = SummarizeChanges(source, target, ScalabilityOptions()).ValueOrDie();
    PrintTableRow(widths,
                  {std::to_string(rows), Fmt(result.elapsed_seconds, 2),
                   Fmt(result.clustering_seconds, 2), Fmt(result.induction_seconds, 2),
                   Fmt(result.fitting_seconds, 2),
                   Fmt(result.summaries[0].scores().accuracy, 3),
                   Fmt(result.summaries[0].scores().score, 3)});
  }
  PrintRule(widths);
}

void BM_EndToEndRows(benchmark::State& state) {
  MontgomeryGenOptions gen;
  gen.num_rows = state.range(0);
  Table source = GenerateMontgomery2016(gen).ValueOrDie();
  Table target = GenerateMontgomery2017(source).ValueOrDie();
  CharlesOptions options = ScalabilityOptions();
  for (auto _ : state) {
    SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
    benchmark::DoNotOptimize(result.summaries[0].scores().score);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EndToEndRows)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Arg(64000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Complexity(benchmark::oNLogN);

}  // namespace
}  // namespace bench
}  // namespace charles

int main(int argc, char** argv) {
  charles::bench::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
