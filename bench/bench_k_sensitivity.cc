/// \file
/// Experiment E9 (§2 partition discovery): sensitivity to the cluster budget
/// k_max. Planting salary policies with 2..6 experience bands, the engine
/// should recover the planted number of partitions whenever k_max admits it,
/// and waste little when k_max exceeds it.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/employee_gen.h"

namespace charles {
namespace bench {
namespace {

void PrintExperiment() {
  PrintHeader("E9: partition-count recovery vs the cluster budget k_max",
              "recovered #CTs equals the planted segment count once k_max >= "
              "planted k");

  EmployeeGenOptions gen;
  gen.num_rows = 2500;
  Table source = GenerateEmployees(gen).ValueOrDie();

  std::vector<int> widths = {10, 7, 9, 8, 9, 9};
  PrintRule(widths);
  PrintTableRow(widths, {"planted k", "k_max", "top #CTs", "f1", "accuracy", "score"});
  PrintRule(widths);
  for (int planted : {2, 3, 4, 5, 6}) {
    Policy policy = MakeSegmentedSalaryPolicy(planted).ValueOrDie();
    Table target = policy.Apply(source).ValueOrDie();
    for (int k_max : {2, 4, 6, 8}) {
      CharlesOptions options = DefaultBenchOptions("salary", "emp_id");
      options.max_clusters = k_max;
      // Bands live on one attribute; allow enough descriptors to express
      // up to 6 of them.
      options.tree_max_depth = 5;
      SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
      const ChangeSummary& top = result.summaries[0];
      RecoveryOptions recovery_options;
      recovery_options.min_partition_jaccard = 0.85;
      RecoveryReport recovery =
          EvaluateRecovery(policy, top, source, recovery_options).ValueOrDie();
      PrintTableRow(widths, {std::to_string(planted), std::to_string(k_max),
                             std::to_string(top.num_cts()), Fmt(recovery.f1, 3),
                             Fmt(top.scores().accuracy, 3), Fmt(top.scores().score, 3)});
    }
  }
  PrintRule(widths);
}

void BM_KMaxRun(benchmark::State& state) {
  EmployeeGenOptions gen;
  gen.num_rows = 2500;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Policy policy = MakeSegmentedSalaryPolicy(4).ValueOrDie();
  Table target = policy.Apply(source).ValueOrDie();
  CharlesOptions options = DefaultBenchOptions("salary", "emp_id");
  options.max_clusters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
    benchmark::DoNotOptimize(result.summaries[0].scores().score);
  }
}
BENCHMARK(BM_KMaxRun)->Arg(2)->Arg(6)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace charles

int main(int argc, char** argv) {
  charles::bench::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
