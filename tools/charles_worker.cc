// charles_worker — the remote shard-execution daemon.
//
// Binds a TCP port, then serves the RemoteBackend protocol (handshake,
// install-input, execute-task, ping, shutdown) until killed or asked to shut
// down. One process serves one connection at a time; run one worker per
// core/box and list them all in CharlesOptions::remote_workers on the
// coordinator side.
//
// Usage:
//   charles_worker [--host 0.0.0.0] [--port 9400] [--print_port]
//
// --port 0 picks an ephemeral port; --print_port writes the bound port to
// stdout (and flushes) so a launcher script can capture it — the CI loopback
// job's handshake with the coordinator.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "distributed/worker_service.h"
#include "net/socket.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host HOST] [--port PORT] [--print_port]\n"
               "  --host HOST    bind address (default 0.0.0.0)\n"
               "  --port PORT    bind port; 0 = ephemeral (default 9400)\n"
               "  --print_port   write the bound port to stdout\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "0.0.0.0";
  int port = 9400;
  bool print_port = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--host") == 0 && i + 1 < argc) {
      host = argv[++i];
    } else if (std::strcmp(arg, "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(arg, "--print_port") == 0) {
      print_port = true;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      Usage(argv[0]);
      return 0;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "charles_worker: invalid port %d\n", port);
    return 2;
  }

  charles::Result<charles::net::TcpListener> listener =
      charles::net::TcpListener::Bind(host, port);
  if (!listener.ok()) {
    std::fprintf(stderr, "charles_worker: %s\n",
                 listener.status().ToString().c_str());
    return 1;
  }
  if (print_port) {
    std::printf("%d\n", listener->port());
    std::fflush(stdout);
  }
  std::fprintf(stderr, "charles_worker: serving on %s:%d (wire versions %d-%d)\n",
               host.c_str(), listener->port(),
               charles::kRemoteWireVersionMin, charles::kRemoteWireVersionMax);

  charles::WorkerService service;
  charles::Status status = service.Serve(*listener, /*stop=*/nullptr);
  if (!status.ok()) {
    std::fprintf(stderr, "charles_worker: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
